#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace qcluster::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Lower incomplete gamma via its power series; accurate for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Upper incomplete gamma via Lentz continued fraction; for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

/// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  QCLUSTER_CHECK(x > 0.0);
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) sum += kCoefficients[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedGammaP(double a, double x) {
  QCLUSTER_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  QCLUSTER_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  QCLUSTER_CHECK(a > 0.0 && b > 0.0);
  QCLUSTER_CHECK(0.0 <= x && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the continued fraction directly when it converges fast, otherwise
  // the symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StandardNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double StandardNormalQuantile(double p) {
  QCLUSTER_CHECK(0.0 < p && p < 1.0);
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Newton polish step using the exact CDF/PDF.
  const double e = StandardNormalCdf(x) - p;
  const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
  if (pdf > std::numeric_limits<double>::min()) x -= e / pdf;
  return x;
}

}  // namespace qcluster::stats
