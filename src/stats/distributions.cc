#include "stats/distributions.h"

#include <cmath>

#include "common/check.h"
#include "stats/special_functions.h"

namespace qcluster::stats {
namespace {

/// Monotone bisection inversion of a CDF on [lo, hi].
template <typename Cdf>
double InvertCdf(const Cdf& cdf, double p, double lo, double hi) {
  // Expand the bracket until it contains the quantile.
  while (cdf(hi) < p && hi < 1e12) {
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double ChiSquaredCdf(double x, double dof) {
  QCLUSTER_CHECK(dof > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

double ChiSquaredQuantile(double p, double dof) {
  QCLUSTER_CHECK(0.0 < p && p < 1.0);
  QCLUSTER_CHECK(dof > 0.0);
  // Wilson-Hilferty starting guess, then bisection for robustness.
  const double z = StandardNormalQuantile(p);
  const double h = 2.0 / (9.0 * dof);
  double guess = dof * std::pow(1.0 - h + z * std::sqrt(h), 3.0);
  if (guess <= 0.0) guess = 0.5;
  return InvertCdf([dof](double x) { return ChiSquaredCdf(x, dof); }, p, 0.0,
                   2.0 * guess + 10.0);
}

double ChiSquaredUpperQuantile(double alpha, double dof) {
  QCLUSTER_CHECK(0.0 < alpha && alpha < 1.0);
  return ChiSquaredQuantile(1.0 - alpha, dof);
}

double FCdf(double x, double d1, double d2) {
  QCLUSTER_CHECK(d1 > 0.0 && d2 > 0.0);
  if (x <= 0.0) return 0.0;
  const double t = d1 * x / (d1 * x + d2);
  return RegularizedIncompleteBeta(d1 / 2.0, d2 / 2.0, t);
}

double FQuantile(double p, double d1, double d2) {
  QCLUSTER_CHECK(0.0 < p && p < 1.0);
  return InvertCdf([d1, d2](double x) { return FCdf(x, d1, d2); }, p, 0.0,
                   16.0);
}

double FUpperQuantile(double alpha, double d1, double d2) {
  QCLUSTER_CHECK(0.0 < alpha && alpha < 1.0);
  return FQuantile(1.0 - alpha, d1, d2);
}

double StudentTCdf(double x, double dof) {
  QCLUSTER_CHECK(dof > 0.0);
  const double t = dof / (dof + x * x);
  const double half = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, t);
  return x >= 0.0 ? 1.0 - half : half;
}

}  // namespace qcluster::stats
