#ifndef QCLUSTER_STATS_WEIGHTED_STATS_H_
#define QCLUSTER_STATS_WEIGHTED_STATS_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace qcluster::stats {

/// Sufficient statistics of a weighted point set — the per-cluster summary
/// the whole paper operates on. Holds exactly the quantities of Table 1:
///
///  * `n`       — number of points n_i,
///  * `weight`  — m_i, the sum of relevance scores (Definition before Eq. 8),
///  * `mean`    — the score-weighted centroid x̄_i (Eq. 2),
///  * `scatter` — Σ_k v_ik (x_ik − x̄_i)(x_ik − x̄_i)' (Eq. 3).
///
/// The scatter (unnormalized second moment) is stored rather than the
/// covariance because the paper's merge rule (Eq. 11-13) and pooled
/// covariances (Eq. 7, 15) are exact linear identities on scatters.
class WeightedStats {
 public:
  /// Constructs an empty summary of dimension `dim`.
  explicit WeightedStats(int dim);

  /// Builds the summary of `points` with per-point relevance scores
  /// `weights` (all positive).
  static WeightedStats FromPoints(const std::vector<linalg::Vector>& points,
                                  const std::vector<double>& weights);

  /// Builds the summary of unit-weight `points`.
  static WeightedStats FromPoints(const std::vector<linalg::Vector>& points);

  /// Combines two summaries. Exactly reproduces Eq. 11-13: merged weight,
  /// weighted mean, and covariance (via the scatter identity
  /// S_new = S_i + S_j + (m_i m_j / m_new) (x̄_i − x̄_j)(x̄_i − x̄_j)').
  static WeightedStats Merged(const WeightedStats& a, const WeightedStats& b);

  /// Adds one point with weight `w > 0` (incremental update; numerically
  /// equivalent to rebuilding from all points).
  void AddPoint(const linalg::Vector& x, double w);

  /// Removes a previously added point (exact downdate — the inverse of
  /// AddPoint). Enables O(p²) leave-one-out evaluation instead of a full
  /// rebuild. The caller must pass a point/weight pair that is actually in
  /// the summary; removing the last point returns to the empty state.
  void RemovePoint(const linalg::Vector& x, double w);

  int dim() const { return static_cast<int>(mean_.size()); }
  int n() const { return n_; }
  double weight() const { return weight_; }
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Matrix& scatter() const { return scatter_; }

  /// Weighted sample covariance S_i with the (m_i − 1) divisor used by the
  /// merge rule (Eq. 13). Returns the zero matrix when weight <= 1.
  linalg::Matrix Covariance() const;

 private:
  int n_;
  double weight_;
  linalg::Vector mean_;
  linalg::Matrix scatter_;
};

/// Pooled inverse-covariance source for the Bayesian classifier (Eq. 7):
/// S_pooled = Σ_i (m_i − 1) S_i / (Σ_i m_i − g) = Σ_i scatter_i / (Σ m_i − g).
/// Falls back to the average scatter normalization when the denominator is
/// not positive (tiny clusters).
linalg::Matrix PooledCovariance(const std::vector<const WeightedStats*>& groups);

/// Two-sample pooled covariance of Eq. 15:
/// S_pooled = (scatter_i + scatter_j) / (m_i + m_j).
linalg::Matrix PooledCovariancePair(const WeightedStats& a,
                                    const WeightedStats& b);

}  // namespace qcluster::stats

#endif  // QCLUSTER_STATS_WEIGHTED_STATS_H_
