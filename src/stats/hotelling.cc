#include "stats/hotelling.h"

#include "common/check.h"
#include "core/invariants.h"
#include "stats/distributions.h"

namespace qcluster::stats {

using linalg::Matrix;
using linalg::Vector;

double HotellingT2(const WeightedStats& a, const WeightedStats& b,
                   CovarianceScheme scheme) {
  const Matrix pooled = PooledCovariancePair(a, b);
  const Matrix inv = InvertCovariance(pooled, scheme);
  return HotellingT2WithInverse(a, b, inv);
}

double HotellingT2WithInverse(const WeightedStats& a, const WeightedStats& b,
                              const Matrix& pooled_inverse) {
  QCLUSTER_CHECK(a.dim() == b.dim());
  // Eq. 14-16 rest on a symmetric PSD pooled inverse; an indefinite one can
  // drive T² negative and invert every merge decision.
  QCLUSTER_AUDIT(
      core::ValidateSymmetricPsd(pooled_inverse, "Hotelling pooled inverse"));
  const Vector diff = linalg::Sub(a.mean(), b.mean());
  const double quad = linalg::QuadraticForm(diff, pooled_inverse, diff);
  const double m_total = a.weight() + b.weight();
  QCLUSTER_CHECK(m_total > 0.0);
  const double t2 = a.weight() * b.weight() / m_total * quad;
  QCLUSTER_AUDIT(core::ValidateHotellingT2(t2, m_total));
  return t2;
}

Result<double> HotellingCriticalDistance(double m_total, int dim,
                                         double alpha) {
  QCLUSTER_CHECK(dim > 0);
  QCLUSTER_CHECK(0.0 < alpha && alpha < 1.0);
  const double p = dim;
  const double dof2 = m_total - p - 1.0;
  if (dof2 <= 0.0) {
    return Status::FailedPrecondition(
        "Hotelling test needs m_i + m_j > p + 1");
  }
  const double f = FUpperQuantile(alpha, p, dof2);
  return (m_total - 2.0) * p / dof2 * f;
}

Result<HotellingTest> TestEqualMeans(const WeightedStats& a,
                                     const WeightedStats& b, double alpha,
                                     CovarianceScheme scheme) {
  const double m_total = a.weight() + b.weight();
  Result<double> c2 = HotellingCriticalDistance(m_total, a.dim(), alpha);
  if (!c2.ok()) return c2.status();
  HotellingTest out;
  out.t2 = HotellingT2(a, b, scheme);
  out.c2 = c2.value();
  out.reject = out.t2 > out.c2;
  out.dof1 = a.dim();
  out.dof2 = m_total - a.dim() - 1.0;
  return out;
}

}  // namespace qcluster::stats
