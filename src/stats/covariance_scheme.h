#ifndef QCLUSTER_STATS_COVARIANCE_SCHEME_H_
#define QCLUSTER_STATS_COVARIANCE_SCHEME_H_

#include "linalg/matrix.h"

namespace qcluster::stats {

/// How S^{-1} is estimated in the quadratic-form measures (Sec. 3.2, 4.4.4).
///
/// The paper evaluates both schemes: the full inverse (MindReader-style)
/// against the diagonal approximation (MARS-style), and adopts the diagonal
/// scheme because it avoids the singularity problem and costs far less CPU
/// (Fig. 6) at nearly identical quality (Tables 2-3).
enum class CovarianceScheme {
  kInverse,   ///< Full matrix inverse with ridge regularization as needed.
  kDiagonal,  ///< Inverse of diag(S) only; never singular after flooring.
};

/// Returns a printable name ("inverse" / "diagonal").
const char* CovarianceSchemeName(CovarianceScheme scheme);

/// Computes S^{-1} under `scheme`.
///
/// kDiagonal: returns diag(1 / max(S_ii, floor)).
/// kInverse: attempts an SPD inverse; when the matrix is numerically
/// singular (fewer samples than dimensions — the singularity issue the paper
/// discusses), a ridge `regularization * mean(diag)` is added first, and the
/// diagonal scheme is the final fallback. The result is always usable.
linalg::Matrix InvertCovariance(const linalg::Matrix& s,
                                CovarianceScheme scheme,
                                double regularization = 1e-6,
                                double floor = 1e-12);

}  // namespace qcluster::stats

#endif  // QCLUSTER_STATS_COVARIANCE_SCHEME_H_
