#include "stats/weighted_stats.h"

#include "common/check.h"

namespace qcluster::stats {

using linalg::Matrix;
using linalg::Vector;

WeightedStats::WeightedStats(int dim)
    : n_(0),
      weight_(0.0),
      mean_(static_cast<std::size_t>(dim), 0.0),
      scatter_(dim, dim, 0.0) {
  QCLUSTER_CHECK(dim > 0);
}

WeightedStats WeightedStats::FromPoints(const std::vector<Vector>& points,
                                        const std::vector<double>& weights) {
  QCLUSTER_CHECK(!points.empty());
  QCLUSTER_CHECK(points.size() == weights.size());
  WeightedStats stats(static_cast<int>(points.front().size()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    stats.AddPoint(points[i], weights[i]);
  }
  return stats;
}

WeightedStats WeightedStats::FromPoints(const std::vector<Vector>& points) {
  return FromPoints(points, std::vector<double>(points.size(), 1.0));
}

WeightedStats WeightedStats::Merged(const WeightedStats& a,
                                    const WeightedStats& b) {
  QCLUSTER_CHECK(a.dim() == b.dim());
  if (a.n_ == 0) return b;
  if (b.n_ == 0) return a;
  WeightedStats out(a.dim());
  out.n_ = a.n_ + b.n_;
  out.weight_ = a.weight_ + b.weight_;  // Eq. 11.
  // Eq. 12: weight-proportional combination of the means.
  const double wa = a.weight_ / out.weight_;
  const double wb = b.weight_ / out.weight_;
  out.mean_ = linalg::Add(linalg::Scale(a.mean_, wa),
                          linalg::Scale(b.mean_, wb));
  // Scatter identity equivalent to Eq. 13.
  const Vector diff = linalg::Sub(a.mean_, b.mean_);
  const double cross = a.weight_ * b.weight_ / out.weight_;
  out.scatter_ = a.scatter_.Add(b.scatter_)
                     .Add(linalg::OuterProduct(diff, diff).Scale(cross));
  return out;
}

void WeightedStats::AddPoint(const Vector& x, double w) {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == dim());
  QCLUSTER_CHECK(w > 0.0);
  // Weighted Welford update: exact for mean and scatter.
  const double new_weight = weight_ + w;
  const Vector delta = linalg::Sub(x, mean_);
  const Vector mean_step = linalg::Scale(delta, w / new_weight);
  mean_ = linalg::Add(mean_, mean_step);
  const Vector delta2 = linalg::Sub(x, mean_);
  // scatter += w * delta * delta2', symmetrized to stay exactly symmetric
  // under floating point.
  const Matrix update = linalg::OuterProduct(delta, delta2)
                            .Add(linalg::OuterProduct(delta2, delta))
                            .Scale(0.5 * w);
  scatter_ = scatter_.Add(update);
  weight_ = new_weight;
  ++n_;
}

void WeightedStats::RemovePoint(const Vector& x, double w) {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == dim());
  QCLUSTER_CHECK(w > 0.0);
  QCLUSTER_CHECK(n_ > 0);
  // The tolerance scales with the held weight: a caller that re-derives w
  // by summation carries rounding proportional to weight_, so near-total
  // removal of a large weight can legitimately overshoot by far more than
  // any fixed epsilon — while for small weights the relative bound is the
  // tighter (correct) one.
  QCLUSTER_CHECK_MSG(weight_ - w >= -1e-9 * weight_,
                     "removing more weight than the summary holds");
  const double new_weight = weight_ - w;
  if (n_ == 1 || new_weight <= 0.0) {
    // Removing the last point — or, through rounding, the numerically
    // entire weight — returns to the empty state; dividing by the
    // (possibly zero or negative) remainder would poison mean and scatter.
    *this = WeightedStats(dim());
    return;
  }
  // Exact inverse of the AddPoint update: with mean' the pre-removal mean
  // and mean the post-removal one, scatter -= w (x − mean)(x − mean')'.
  const Vector delta_old = linalg::Sub(x, mean_);  // x − mean'.
  mean_ = linalg::Scale(
      linalg::Sub(linalg::Scale(mean_, weight_), linalg::Scale(x, w)),
      1.0 / new_weight);
  const Vector delta_new = linalg::Sub(x, mean_);  // x − mean.
  const Matrix update = linalg::OuterProduct(delta_new, delta_old)
                            .Add(linalg::OuterProduct(delta_old, delta_new))
                            .Scale(0.5 * w);
  scatter_ = scatter_.Sub(update);
  weight_ = new_weight;
  --n_;
}

Matrix WeightedStats::Covariance() const {
  if (weight_ <= 1.0) return Matrix(dim(), dim(), 0.0);
  return scatter_.Scale(1.0 / (weight_ - 1.0));
}

Matrix PooledCovariance(const std::vector<const WeightedStats*>& groups) {
  QCLUSTER_CHECK(!groups.empty());
  const int dim = groups.front()->dim();
  Matrix sum(dim, dim, 0.0);
  double total_weight = 0.0;
  for (const WeightedStats* g : groups) {
    QCLUSTER_CHECK(g->dim() == dim);
    sum = sum.Add(g->scatter());
    total_weight += g->weight();
  }
  const double denom = total_weight - static_cast<double>(groups.size());
  if (denom > 0.0) return sum.Scale(1.0 / denom);
  // Degenerate denominator: every cluster is a singleton; keep the raw
  // scatter scale so callers still get a symmetric PSD matrix.
  return sum;
}

Matrix PooledCovariancePair(const WeightedStats& a, const WeightedStats& b) {
  QCLUSTER_CHECK(a.dim() == b.dim());
  const double total = a.weight() + b.weight();
  QCLUSTER_CHECK(total > 0.0);
  return a.scatter().Add(b.scatter()).Scale(1.0 / total);
}

}  // namespace qcluster::stats
