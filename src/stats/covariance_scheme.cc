#include "stats/covariance_scheme.h"

#include <cmath>

#include "common/check.h"
#include "core/invariants.h"
#include "linalg/decomposition.h"

namespace qcluster::stats {

const char* CovarianceSchemeName(CovarianceScheme scheme) {
  switch (scheme) {
    case CovarianceScheme::kInverse:
      return "inverse";
    case CovarianceScheme::kDiagonal:
      return "diagonal";
  }
  return "?";
}

namespace {

/// Column-wise SPD inversion returns a numerically asymmetric matrix when
/// the input is ill-conditioned; downstream eigen analysis needs exact
/// symmetry.
linalg::Matrix Symmetrized(const linalg::Matrix& m) {
  return m.Add(m.Transposed()).Scale(0.5);
}

}  // namespace

linalg::Matrix InvertCovariance(const linalg::Matrix& s,
                                CovarianceScheme scheme,
                                double regularization, double floor) {
  QCLUSTER_CHECK(s.rows() == s.cols());
  // Eq. 7/10: classification quadratic forms need a symmetric PSD
  // covariance; a violated input here means an upstream scatter update or
  // pooling broke the algebra.
  QCLUSTER_AUDIT(core::ValidateSymmetricPsd(s, "InvertCovariance input"));
  const int p = s.rows();
  if (scheme == CovarianceScheme::kDiagonal) {
    linalg::Vector inv_diag(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      const double v = s(i, i);
      inv_diag[static_cast<std::size_t>(i)] =
          1.0 / (v > floor ? v : floor);
    }
    return linalg::Matrix::Diagonal(inv_diag);
  }

  Result<linalg::Matrix> inv = linalg::InverseSpd(s);
  if (inv.ok()) {
    linalg::Matrix sym = Symmetrized(inv.value());
    QCLUSTER_AUDIT(core::ValidateSymmetricPsd(sym, "InvertCovariance inverse"));
    return sym;
  }

  // Singular covariance: regularize the diagonal (Sec. 3.2, citing [21])
  // and retry before falling back to the diagonal scheme.
  double mean_diag = 0.0;
  for (int i = 0; i < p; ++i) mean_diag += s(i, i);
  mean_diag = p > 0 ? mean_diag / p : 0.0;
  linalg::Matrix ridged = s;
  ridged.AddToDiagonal(regularization * (mean_diag > floor ? mean_diag : 1.0) +
                       floor);
  inv = linalg::InverseSpd(ridged);
  if (inv.ok()) return Symmetrized(inv.value());
  return InvertCovariance(s, CovarianceScheme::kDiagonal, regularization,
                          floor);
}

}  // namespace qcluster::stats
