#include "eval/fusion.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"

namespace qcluster::eval {
namespace {

std::vector<index::Neighbor> SortAndTruncate(
    std::unordered_map<int, double>& scores, int k) {
  std::vector<index::Neighbor> fused;
  fused.reserve(scores.size());
  for (const auto& [id, score] : scores) {
    fused.push_back(index::Neighbor{id, score});
  }
  std::sort(fused.begin(), fused.end(),
            [](const index::Neighbor& a, const index::Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (static_cast<int>(fused.size()) > k) {
    fused.resize(static_cast<std::size_t>(k));
  }
  return fused;
}

}  // namespace

std::vector<index::Neighbor> ReciprocalRankFusion(
    const std::vector<std::vector<index::Neighbor>>& lists,
    const std::vector<double>& weights, int k, double k0) {
  QCLUSTER_CHECK(lists.size() == weights.size());
  QCLUSTER_CHECK(!lists.empty());
  QCLUSTER_CHECK(k > 0);
  QCLUSTER_CHECK(k0 > 0.0);
  std::unordered_map<int, double> scores;
  for (std::size_t l = 0; l < lists.size(); ++l) {
    QCLUSTER_CHECK(weights[l] >= 0.0);
    for (std::size_t r = 0; r < lists[l].size(); ++r) {
      // Negative: the sort treats smaller as better.
      scores[lists[l][r].id] -=
          weights[l] / (k0 + static_cast<double>(r + 1));
    }
  }
  return SortAndTruncate(scores, k);
}

std::vector<index::Neighbor> WeightedScoreFusion(
    const std::vector<std::vector<index::Neighbor>>& lists,
    const std::vector<double>& weights, int k) {
  QCLUSTER_CHECK(lists.size() == weights.size());
  QCLUSTER_CHECK(!lists.empty());
  QCLUSTER_CHECK(k > 0);

  // Per-list min-max normalization bounds.
  std::vector<double> lo(lists.size()), hi(lists.size());
  for (std::size_t l = 0; l < lists.size(); ++l) {
    lo[l] = std::numeric_limits<double>::infinity();
    hi[l] = -std::numeric_limits<double>::infinity();
    for (const index::Neighbor& n : lists[l]) {
      lo[l] = std::min(lo[l], n.distance);
      hi[l] = std::max(hi[l], n.distance);
    }
  }

  // Union of candidate ids; missing entries cost the list's maximum (1.0).
  std::unordered_map<int, double> scores;
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  QCLUSTER_CHECK(total_weight > 0.0);
  for (std::size_t l = 0; l < lists.size(); ++l) {
    for (const index::Neighbor& n : lists[l]) {
      scores.try_emplace(n.id, total_weight);  // Start at the worst case.
    }
  }
  for (std::size_t l = 0; l < lists.size(); ++l) {
    const double range = hi[l] - lo[l];
    for (const index::Neighbor& n : lists[l]) {
      const double norm = range > 0.0 ? (n.distance - lo[l]) / range : 0.0;
      // Replace this list's worst-case contribution with the actual one.
      scores[n.id] -= weights[l] * (1.0 - norm);
    }
  }
  return SortAndTruncate(scores, k);
}

}  // namespace qcluster::eval
