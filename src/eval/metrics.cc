#include "eval/metrics.h"

#include "common/check.h"

namespace qcluster::eval {

std::vector<PrPoint> AveragePrCurves(
    const std::vector<std::vector<PrPoint>>& curves) {
  QCLUSTER_CHECK(!curves.empty());
  const std::size_t length = curves.front().size();
  std::vector<PrPoint> avg(length);
  for (const auto& curve : curves) {
    QCLUSTER_CHECK(curve.size() == length);
    for (std::size_t i = 0; i < length; ++i) {
      avg[i].precision += curve[i].precision;
      avg[i].recall += curve[i].recall;
    }
  }
  const double inv = 1.0 / static_cast<double>(curves.size());
  for (PrPoint& pt : avg) {
    pt.precision *= inv;
    pt.recall *= inv;
  }
  return avg;
}

}  // namespace qcluster::eval
