#ifndef QCLUSTER_EVAL_METRICS_H_
#define QCLUSTER_EVAL_METRICS_H_

#include <algorithm>
#include <vector>

#include "index/knn.h"

namespace qcluster::eval {

/// One (recall, precision) operating point.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
};

/// Precision at cutoff `n`: fraction of the first n results that are
/// relevant. `relevant(id)` is the ground-truth predicate.
template <typename RelevantFn>
double PrecisionAt(const std::vector<index::Neighbor>& ranked, int n,
                   RelevantFn relevant) {
  if (n <= 0 || ranked.empty()) return 0.0;
  const int limit = std::min<int>(n, static_cast<int>(ranked.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (relevant(ranked[static_cast<std::size_t>(i)].id)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

/// Recall at cutoff `n`: fraction of the `total_relevant` ground-truth
/// items found in the first n results.
template <typename RelevantFn>
double RecallAt(const std::vector<index::Neighbor>& ranked, int n,
                int total_relevant, RelevantFn relevant) {
  if (n <= 0 || ranked.empty() || total_relevant <= 0) return 0.0;
  const int limit = std::min<int>(n, static_cast<int>(ranked.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (relevant(ranked[static_cast<std::size_t>(i)].id)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(total_relevant);
}

/// The per-iteration precision-recall curve of Fig. 8-9: one point per
/// cutoff n = 1..ranked.size().
template <typename RelevantFn>
std::vector<PrPoint> PrCurve(const std::vector<index::Neighbor>& ranked,
                             int total_relevant, RelevantFn relevant) {
  std::vector<PrPoint> curve;
  curve.reserve(ranked.size());
  int hits = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (relevant(ranked[i].id)) ++hits;
    PrPoint pt;
    pt.precision = static_cast<double>(hits) / static_cast<double>(i + 1);
    pt.recall = total_relevant > 0 ? static_cast<double>(hits) /
                                         static_cast<double>(total_relevant)
                                   : 0.0;
    curve.push_back(pt);
  }
  return curve;
}

/// Averages curves element-wise (all must share one length).
std::vector<PrPoint> AveragePrCurves(
    const std::vector<std::vector<PrPoint>>& curves);

}  // namespace qcluster::eval

#endif  // QCLUSTER_EVAL_METRICS_H_
