#ifndef QCLUSTER_EVAL_ORACLE_H_
#define QCLUSTER_EVAL_ORACLE_H_

#include <vector>

#include "core/retrieval_method.h"
#include "index/knn.h"

namespace qcluster::eval {

/// Relevance-judgement policy of the simulated user.
struct OracleOptions {
  /// Score given to images of the query's own category ("most relevant").
  double same_category_score = 3.0;
  /// Score given to images of a related category — same theme ("relevant",
  /// e.g. flowers vs plants). 0 disables theme-level relevance.
  double same_theme_score = 1.0;
  /// Imperfect-user model: probability that a truly relevant retrieved
  /// image is overlooked (not marked), and probability that a non-relevant
  /// retrieved image is marked by mistake (with the theme score). 0/0 is
  /// the paper's perfect oracle. Judgements stay deterministic per
  /// (result, query) via a hash-seeded generator.
  double miss_probability = 0.0;
  double false_mark_probability = 0.0;
};

/// The ground-truth user of Sec. 5: "we use high-level category information
/// as the ground truth to obtain the relevance feedback … images from the
/// same category are considered most relevant and images from related
/// categories are considered relevant."
class OracleUser {
 public:
  /// `categories` and `themes` are per-image ground truth labels, kept
  /// alive by the caller.
  OracleUser(const std::vector<int>* categories, const std::vector<int>* themes,
             const OracleOptions& options);

  /// Marks the relevant images among `result` for a query of category
  /// `query_category` / theme `query_theme`.
  std::vector<core::RelevantItem> Judge(
      const std::vector<index::Neighbor>& result, int query_category,
      int query_theme) const;

  /// Full judgement including the implicit negative set: retrieved images
  /// that are neither same-category nor same-theme. Used by methods that
  /// exploit negative feedback (Rocchio's γ term).
  struct Judgement {
    std::vector<core::RelevantItem> relevant;
    std::vector<int> non_relevant;
  };
  Judgement JudgeWithNegatives(const std::vector<index::Neighbor>& result,
                               int query_category, int query_theme) const;

  /// Ground-truth relevance predicate used by precision/recall: same
  /// category only (the strictest reading, used for all reported metrics).
  bool IsRelevant(int id, int query_category) const;

  /// Total number of images in `category` (the recall denominator).
  int CategorySize(int category) const;

 private:
  const std::vector<int>* categories_;
  const std::vector<int>* themes_;
  OracleOptions options_;
};

}  // namespace qcluster::eval

#endif  // QCLUSTER_EVAL_ORACLE_H_
