#include "eval/simulator.h"

#include <chrono>

#include "common/check.h"

namespace qcluster::eval {
namespace {

IterationResult MeasureRound(const std::vector<index::Neighbor>& result,
                             const OracleUser& oracle, int query_category,
                             int total_relevant, int k, double wall_seconds,
                             const index::SearchStats& stats) {
  auto relevant = [&](int id) { return oracle.IsRelevant(id, query_category); };
  IterationResult out;
  out.precision = PrecisionAt(result, k, relevant);
  out.recall = RecallAt(result, k, total_relevant, relevant);
  // Pad the curve to exactly k points so averages across queries align.
  std::vector<index::Neighbor> padded = result;
  while (static_cast<int>(padded.size()) < k) {
    padded.push_back(index::Neighbor{-1, 0.0});
  }
  auto padded_relevant = [&](int id) {
    return id >= 0 && oracle.IsRelevant(id, query_category);
  };
  out.pr_curve = PrCurve(padded, total_relevant, padded_relevant);
  out.search_stats = stats;
  out.wall_seconds = wall_seconds;
  return out;
}

}  // namespace

SessionResult SimulateSession(core::RetrievalMethod& method,
                              const std::vector<linalg::Vector>& database,
                              const OracleUser& oracle,
                              const std::vector<int>& categories,
                              const std::vector<int>& themes, int query_id,
                              const SimulationOptions& options) {
  QCLUSTER_CHECK(0 <= query_id &&
                 query_id < static_cast<int>(database.size()));
  QCLUSTER_CHECK(options.iterations >= 0);
  QCLUSTER_CHECK(options.k > 0);
  const int query_category = categories[static_cast<std::size_t>(query_id)];
  const int query_theme = themes[static_cast<std::size_t>(query_id)];
  const int total_relevant = oracle.CategorySize(query_category);

  SessionResult session;
  using Clock = std::chrono::steady_clock;

  auto t0 = Clock::now();
  std::vector<index::Neighbor> result =
      method.InitialQuery(database[static_cast<std::size_t>(query_id)]);
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  session.iterations.push_back(MeasureRound(result, oracle, query_category,
                                            total_relevant, options.k, secs,
                                            method.last_search_stats()));

  for (int it = 0; it < options.iterations; ++it) {
    const std::vector<core::RelevantItem> marked =
        oracle.Judge(result, query_category, query_theme);
    if (marked.empty()) {
      // The user found nothing relevant: the method cannot refine; repeat
      // the previous metrics (the paper's averages simply see no change).
      session.iterations.push_back(session.iterations.back());
      continue;
    }
    t0 = Clock::now();
    result = method.Feedback(marked);
    secs = std::chrono::duration<double>(Clock::now() - t0).count();
    session.iterations.push_back(MeasureRound(result, oracle, query_category,
                                              total_relevant, options.k, secs,
                                              method.last_search_stats()));
  }
  return session;
}

SessionResult AverageSessions(const std::vector<SessionResult>& sessions) {
  QCLUSTER_CHECK(!sessions.empty());
  const std::size_t rounds = sessions.front().iterations.size();
  SessionResult avg;
  avg.iterations.resize(rounds);
  std::vector<std::vector<PrPoint>> curves;
  for (std::size_t r = 0; r < rounds; ++r) {
    curves.clear();
    for (const SessionResult& s : sessions) {
      QCLUSTER_CHECK(s.iterations.size() == rounds);
      const IterationResult& it = s.iterations[r];
      avg.iterations[r].precision += it.precision;
      avg.iterations[r].recall += it.recall;
      avg.iterations[r].wall_seconds += it.wall_seconds;
      avg.iterations[r].search_stats.distance_evaluations +=
          it.search_stats.distance_evaluations;
      avg.iterations[r].search_stats.nodes_visited +=
          it.search_stats.nodes_visited;
      avg.iterations[r].search_stats.leaves_visited +=
          it.search_stats.leaves_visited;
      curves.push_back(it.pr_curve);
    }
    const double inv = 1.0 / static_cast<double>(sessions.size());
    avg.iterations[r].precision *= inv;
    avg.iterations[r].recall *= inv;
    avg.iterations[r].wall_seconds *= inv;
    avg.iterations[r].search_stats.distance_evaluations = static_cast<long long>(
        avg.iterations[r].search_stats.distance_evaluations * inv);
    avg.iterations[r].search_stats.nodes_visited = static_cast<long long>(
        avg.iterations[r].search_stats.nodes_visited * inv);
    avg.iterations[r].search_stats.leaves_visited = static_cast<long long>(
        avg.iterations[r].search_stats.leaves_visited * inv);
    avg.iterations[r].pr_curve = AveragePrCurves(curves);
  }
  return avg;
}

std::vector<int> SampleQueryIds(int database_size, int count, Rng& rng) {
  QCLUSTER_CHECK(count <= database_size);
  return rng.SampleWithoutReplacement(database_size, count);
}

}  // namespace qcluster::eval
