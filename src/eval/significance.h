#ifndef QCLUSTER_EVAL_SIGNIFICANCE_H_
#define QCLUSTER_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace qcluster::eval {

/// Result of a paired two-sided t-test.
struct PairedTTest {
  double mean_difference = 0.0;  ///< mean(a − b).
  double t_statistic = 0.0;
  double dof = 0.0;
  double p_value = 0.0;  ///< Two-sided.
  bool significant = false;
};

/// Paired t-test over per-query metric values of two methods (e.g. recall
/// at the final iteration for every query). The experiment harness uses it
/// to report whether Qcluster's advantage over a baseline is statistically
/// significant rather than query-sampling noise. Requires at least two
/// pairs and non-degenerate differences; a zero-variance nonzero difference
/// reports p = 0.
Result<PairedTTest> PairedDifferenceTest(const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         double alpha = 0.05);

/// A percentile bootstrap confidence interval for the mean of `values`.
struct BootstrapCi {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Resamples `values` with replacement `resamples` times and returns the
/// mean plus the (alpha/2, 1 − alpha/2) percentile interval — the error
/// bars for per-query recall/precision averages. Requires non-empty input.
Result<BootstrapCi> BootstrapMeanCi(const std::vector<double>& values,
                                    double alpha, int resamples,
                                    std::uint64_t seed);

}  // namespace qcluster::eval

#endif  // QCLUSTER_EVAL_SIGNIFICANCE_H_
