#ifndef QCLUSTER_EVAL_FUSION_H_
#define QCLUSTER_EVAL_FUSION_H_

#include <vector>

#include "index/knn.h"

namespace qcluster::eval {

/// Rank-list fusion for multi-feature retrieval. MARS-lineage CBIR systems
/// combine per-feature similarities (color, texture) into an overall
/// ranking; these utilities fuse the ranked lists produced by running a
/// retrieval method independently in each feature space.

/// Reciprocal-rank fusion: score(id) = Σ_lists w_l / (k0 + rank_l(id)),
/// with rank counted from 1 and ids absent from a list contributing 0.
/// Robust to incomparable distance scales (it ignores them entirely).
/// Returns the fused ranking (best first), at most `k` entries; the
/// `distance` field carries the negated fusion score so that smaller is
/// better, consistent with every other ranking in the library.
std::vector<index::Neighbor> ReciprocalRankFusion(
    const std::vector<std::vector<index::Neighbor>>& lists,
    const std::vector<double>& weights, int k, double k0 = 60.0);

/// Min-max normalized score fusion: each list's distances are rescaled to
/// [0, 1]; fused(id) = Σ_l w_l · norm_dist_l(id), with ids missing from a
/// list assigned that list's maximum (1.0). Sensitive to distance shapes
/// but uses the full metric information.
std::vector<index::Neighbor> WeightedScoreFusion(
    const std::vector<std::vector<index::Neighbor>>& lists,
    const std::vector<double>& weights, int k);

}  // namespace qcluster::eval

#endif  // QCLUSTER_EVAL_FUSION_H_
