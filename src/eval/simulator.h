#ifndef QCLUSTER_EVAL_SIMULATOR_H_
#define QCLUSTER_EVAL_SIMULATOR_H_

#include <vector>

#include "common/rng.h"
#include "core/retrieval_method.h"
#include "eval/metrics.h"
#include "eval/oracle.h"

namespace qcluster::eval {

/// Configuration of one simulated feedback session.
struct SimulationOptions {
  int iterations = 5;  ///< Feedback rounds after the initial query.
  int k = 100;         ///< Result-set size used for the headline metrics.
};

/// Metrics of one retrieval round.
struct IterationResult {
  double precision = 0.0;             ///< Precision at k.
  double recall = 0.0;                ///< Recall at k.
  std::vector<PrPoint> pr_curve;      ///< Full curve (cutoffs 1..k).
  index::SearchStats search_stats;    ///< Cost of the round's k-NN query.
  double wall_seconds = 0.0;          ///< Wall-clock time of the round.
};

/// Metrics of a full session: element 0 is the initial query, element i is
/// feedback iteration i.
struct SessionResult {
  std::vector<IterationResult> iterations;
};

/// Drives `method` through the paper's protocol for one query: initial
/// query-by-example at `query_id`, then `iterations` rounds in which the
/// oracle marks the relevant images in the current result and the method
/// refines. Results are padded with sentinel misses when a round returns
/// fewer than k images, so curves stay comparable.
SessionResult SimulateSession(core::RetrievalMethod& method,
                              const std::vector<linalg::Vector>& database,
                              const OracleUser& oracle,
                              const std::vector<int>& categories,
                              const std::vector<int>& themes, int query_id,
                              const SimulationOptions& options);

/// Averages session results (all must share iteration count and k).
SessionResult AverageSessions(const std::vector<SessionResult>& sessions);

/// Draws `count` query ids uniformly without replacement.
std::vector<int> SampleQueryIds(int database_size, int count, Rng& rng);

}  // namespace qcluster::eval

#endif  // QCLUSTER_EVAL_SIMULATOR_H_
