#include "eval/significance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "stats/distributions.h"

namespace qcluster::eval {

Result<PairedTTest> PairedDifferenceTest(const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         double alpha) {
  QCLUSTER_CHECK(0.0 < alpha && alpha < 1.0);
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired test needs equal-length samples");
  }
  const std::size_t n = a.size();
  if (n < 2) {
    return Status::FailedPrecondition("paired test needs at least 2 pairs");
  }

  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (a[i] - b[i]) - mean;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);

  PairedTTest out;
  out.mean_difference = mean;
  out.dof = static_cast<double>(n - 1);
  if (var <= 0.0) {
    // All differences identical: either exactly zero (p = 1) or a
    // deterministic nonzero shift (p = 0).
    out.t_statistic = mean == 0.0 ? 0.0
                                  : std::numeric_limits<double>::infinity();
    out.p_value = mean == 0.0 ? 1.0 : 0.0;
    out.significant = mean != 0.0;
    return out;
  }
  out.t_statistic = mean / std::sqrt(var / static_cast<double>(n));
  const double tail =
      stats::StudentTCdf(-std::abs(out.t_statistic), out.dof);
  out.p_value = 2.0 * tail;
  out.significant = out.p_value < alpha;
  return out;
}

Result<BootstrapCi> BootstrapMeanCi(const std::vector<double>& values,
                                    double alpha, int resamples,
                                    std::uint64_t seed) {
  QCLUSTER_CHECK(0.0 < alpha && alpha < 1.0);
  QCLUSTER_CHECK(resamples >= 10);
  if (values.empty()) {
    return Status::FailedPrecondition("bootstrap needs at least one value");
  }
  Rng rng(seed);
  const std::size_t n = values.size();
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  double total = 0.0;
  for (double v : values) total += v;
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += values[static_cast<std::size_t>(rng.UniformInt(n))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const auto percentile = [&means](double p) {
    const double pos = p * static_cast<double>(means.size() - 1);
    const std::size_t idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= means.size()) return means.back();
    return means[idx] * (1.0 - frac) + means[idx + 1] * frac;
  };
  BootstrapCi out;
  out.mean = total / static_cast<double>(n);
  out.lower = percentile(alpha / 2.0);
  out.upper = percentile(1.0 - alpha / 2.0);
  return out;
}

}  // namespace qcluster::eval
