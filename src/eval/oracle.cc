#include "eval/oracle.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace qcluster::eval {

OracleUser::OracleUser(const std::vector<int>* categories,
                       const std::vector<int>* themes,
                       const OracleOptions& options)
    : categories_(categories), themes_(themes), options_(options) {
  QCLUSTER_CHECK(categories != nullptr && themes != nullptr);
  QCLUSTER_CHECK(categories->size() == themes->size());
  QCLUSTER_CHECK(options.same_category_score > 0.0);
  QCLUSTER_CHECK(options.same_theme_score >= 0.0);
}

std::vector<core::RelevantItem> OracleUser::Judge(
    const std::vector<index::Neighbor>& result, int query_category,
    int query_theme) const {
  // Deterministic per-judgement noise: seeded by the query identity, so
  // repeated runs are reproducible and the same user "re-judging" the same
  // result makes the same mistakes.
  Rng noise(0xFACEu ^ (static_cast<std::uint64_t>(query_category) << 20) ^
            (static_cast<std::uint64_t>(query_theme) << 8) ^
            (result.empty() ? 0u
                            : static_cast<std::uint64_t>(result[0].id)));
  const bool imperfect = options_.miss_probability > 0.0 ||
                         options_.false_mark_probability > 0.0;

  std::vector<core::RelevantItem> marked;
  for (const index::Neighbor& n : result) {
    QCLUSTER_CHECK(0 <= n.id && n.id < static_cast<int>(categories_->size()));
    const int cat = (*categories_)[static_cast<std::size_t>(n.id)];
    const int theme = (*themes_)[static_cast<std::size_t>(n.id)];
    const bool truly_relevant =
        cat == query_category ||
        (theme == query_theme && options_.same_theme_score > 0.0);
    if (truly_relevant) {
      if (imperfect && noise.Uniform() < options_.miss_probability) continue;
      marked.push_back(core::RelevantItem{
          n.id, cat == query_category ? options_.same_category_score
                                      : options_.same_theme_score});
    } else if (imperfect &&
               noise.Uniform() < options_.false_mark_probability) {
      // A mistaken mark carries low confidence: the theme-level score (or
      // 1 when themes are disabled).
      marked.push_back(core::RelevantItem{
          n.id, options_.same_theme_score > 0.0 ? options_.same_theme_score
                                                : 1.0});
    }
  }
  return marked;
}

OracleUser::Judgement OracleUser::JudgeWithNegatives(
    const std::vector<index::Neighbor>& result, int query_category,
    int query_theme) const {
  Judgement out;
  out.relevant = Judge(result, query_category, query_theme);
  std::unordered_set<int> marked;
  for (const core::RelevantItem& item : out.relevant) marked.insert(item.id);
  for (const index::Neighbor& n : result) {
    if (!marked.contains(n.id)) out.non_relevant.push_back(n.id);
  }
  return out;
}

bool OracleUser::IsRelevant(int id, int query_category) const {
  QCLUSTER_CHECK(0 <= id && id < static_cast<int>(categories_->size()));
  return (*categories_)[static_cast<std::size_t>(id)] == query_category;
}

int OracleUser::CategorySize(int category) const {
  return static_cast<int>(
      std::count(categories_->begin(), categories_->end(), category));
}

}  // namespace qcluster::eval
