// Width-4 dispatch tier: four rows per batch step on one 256-bit AVX2
// register, lane r carrying row r. This translation unit is the only one
// compiled with -mavx2 (and without -mfma — the kernels' multiply/add
// pairs must stay unfused to match the other tiers bit for bit); the
// dispatcher selects it only after the running CPU reports AVX2, so the
// rest of the binary stays runnable on any x86-64 host.

#include "linalg/simd_kernels.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace qcluster::linalg::simd::internal {

#if defined(__AVX2__)

namespace {

struct Avx2Policy {
  static constexpr int kWidth = 4;
  using V = __m256d;
  using M = __m256d;  // all-ones / all-zeros per lane

  static V Zero() { return _mm256_setzero_pd(); }

  static V Broadcast(double x) { return _mm256_set1_pd(x); }

  static V Gather(const double* const* rows, int i) {
    return _mm256_set_pd(rows[3][i], rows[2][i], rows[1][i], rows[0][i]);
  }

  static V Load(const double* p) { return _mm256_loadu_pd(p); }

  static V Add(V a, V b) { return _mm256_add_pd(a, b); }

  static V Sub(V a, V b) { return _mm256_sub_pd(a, b); }

  static V Mul(V a, V b) { return _mm256_mul_pd(a, b); }

  static V Div(V a, V b) { return _mm256_div_pd(a, b); }

  static V MaxZero(V v) {
    // v > 0 ? v : +0 per lane (ordered quiet compare: NaN fails and lands
    // on +0, matching the scalar ternary).
    return _mm256_and_pd(_mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GT_OQ),
                         v);
  }

  static M FalseMask() { return _mm256_setzero_pd(); }

  static M CmpLE(V a, V b) {
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);  // NaN -> false
  }

  static M OrMask(M a, M b) { return _mm256_or_pd(a, b); }

  static V Select(M m, V yes, V no) { return _mm256_blendv_pd(no, yes, m); }

  static void Store(double* out, V v) { _mm256_storeu_pd(out, v); }
};

constexpr KernelTable kTable = MakeTable<Avx2Policy>(Tier::kWidth4);

}  // namespace

const KernelTable* Width4Table() { return &kTable; }

#else

// Compiled without AVX2 support (non-x86 target or a compiler without
// -mavx2): the tier simply does not exist in this binary and the dispatcher
// falls back to width-2 or scalar.
const KernelTable* Width4Table() { return nullptr; }

#endif

}  // namespace qcluster::linalg::simd::internal
