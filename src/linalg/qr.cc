#include "linalg/qr.h"

#include <cmath>

#include "common/check.h"

namespace qcluster::linalg {

Vector QrFactor::SolveLeastSquares(const Vector& b) const {
  QCLUSTER_CHECK(static_cast<int>(b.size()) == q.rows());
  const Vector qtb = q.TransposedMatVec(b);
  // Back substitution with R.
  const int n = r.cols();
  Vector x(qtb);
  for (int i = n - 1; i >= 0; --i) {
    double sum = x[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      sum -= r(i, j) * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = sum / r(i, i);
  }
  return x;
}

Result<QrFactor> Qr(const Matrix& a) {
  const int m = a.rows();
  const int n = a.cols();
  QCLUSTER_CHECK_MSG(m >= n, "thin QR requires rows >= cols");

  // Modified Gram-Schmidt: numerically adequate for the well-scaled,
  // low-dimensional systems this library solves, and much simpler to audit
  // than accumulating Householder reflectors.
  Matrix q(m, n);
  Matrix r(n, n, 0.0);
  std::vector<Vector> columns;
  columns.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) columns.push_back(a.Col(c));

  for (int c = 0; c < n; ++c) {
    Vector v = columns[static_cast<std::size_t>(c)];
    for (int prev = 0; prev < c; ++prev) {
      const Vector qprev = q.Col(prev);
      const double proj = Dot(qprev, v);
      r(prev, c) = proj;
      Axpy(-proj, qprev, v);
    }
    const double norm = Norm(v);
    const double col_scale = Norm(columns[static_cast<std::size_t>(c)]);
    if (norm <= 1e-12 * (1.0 + col_scale)) {
      return Status::SingularMatrix("rank-deficient matrix in QR");
    }
    r(c, c) = norm;
    for (int row = 0; row < m; ++row) {
      q(row, c) = v[static_cast<std::size_t>(row)] / norm;
    }
  }
  return QrFactor{std::move(q), std::move(r)};
}

Result<Vector> LeastSquares(const Matrix& a, const Vector& b) {
  Result<QrFactor> qr = Qr(a);
  if (!qr.ok()) return qr.status();
  return qr.value().SolveLeastSquares(b);
}

}  // namespace qcluster::linalg
