#ifndef QCLUSTER_LINALG_SIMD_KERNELS_H_
#define QCLUSTER_LINALG_SIMD_KERNELS_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "linalg/simd.h"

// Kernel bodies shared by every dispatch tier. The vector axis is the
// *batch* dimension: a batch kernel scores P::kWidth contiguous rows at a
// time, one row per SIMD lane, and the element loop walks the dimension
// sequentially — so each lane performs exactly the operation sequence of
// the scalar row kernel, in the same order, regardless of tier or row
// width. Leftover rows (n % kWidth) fall through to the row kernel itself.
// That makes scalar/batch and cross-tier byte-identity structural rather
// than an argument about reduction trees, and it vectorizes at *any*
// dimension — including the paper's 3-dim color features, where a
// within-row lane scheme would have no vector work at all.
//
// The row kernels below are deliberately plain sequential scalar code:
// they define the canonical arithmetic order every lane reproduces. Tier
// translation units are compiled with -ffp-contract=off so the compiler
// cannot fuse the explicit multiply/add pairs into FMAs in either the
// scalar or the vector bodies (fusing only some of them would break
// parity).
//
// A lane policy provides (kWidth == 1 policies need nothing else — every
// batch kernel degrades to the row-kernel loop):
//   static constexpr int kWidth;               // rows per batch step
//   using V = ...;                             // kWidth doubles, 1 row each
//   using M = ...;                             // per-lane boolean mask
//   static V Zero();
//   static V Broadcast(double x);              // splat one query element
//   static V Gather(const double* const* rows, int i);   // lane r=rows[r][i]
//   static V Load(const double* p);            // lanes = p[0..kWidth-1]
//   static V Add(V, V); Sub; Mul; Div;         // element-wise
//   static V MaxZero(V v);                     // per lane: v > 0 ? v : +0
//   static M FalseMask();
//   static M CmpLE(V a, V b);                  // per lane: a <= b (quiet)
//   static M OrMask(M, M);
//   static V Select(M m, V yes, V no);         // per lane: m ? yes : no
//   static void Store(double* out, V v);       // spill lanes

namespace qcluster::linalg::simd::internal {

// ---------------------------------------------------------------------------
// Canonical row kernels: one point, sequential element order. Shared by all
// tiers (the dispatch table of every tier points at these), so the per-point
// entry points cannot drift from the batch lanes that mirror them.

inline double SquaredL2RowRef(const double* q, const double* x, int d) {
  double sum = 0.0;
  for (int i = 0; i < d; ++i) {
    const double diff = q[i] - x[i];
    sum += diff * diff;
  }
  return sum;
}

inline double WeightedSqRowRef(const double* w, const double* q,
                               const double* x, int d) {
  double sum = 0.0;
  for (int i = 0; i < d; ++i) {
    const double diff = x[i] - q[i];
    sum += (w[i] * diff) * diff;
  }
  return sum;
}

inline double DotRowRef(const double* a, const double* b, int d) {
  double sum = 0.0;
  for (int i = 0; i < d; ++i) sum += a[i] * b[i];
  return sum;
}

inline double QuadraticFormRowRef(const double* a, const double* v, int d) {
  // Outer sum over matrix rows, inner dot sequential: the deterministic
  // split of the O(d²) form that the batch lanes replicate.
  double sum = 0.0;
  const std::size_t stride = static_cast<std::size_t>(d);
  for (int r = 0; r < d; ++r) {
    sum += v[r] * DotRowRef(a + static_cast<std::size_t>(r) * stride, v, d);
  }
  return sum;
}

inline double MahalanobisRowRef(const double* a, const double* aq,
                                double q_aq, const double* x, int d) {
  // (x−q)ᵀA(x−q) = xᵀAx − 2·xᵀ(Aq) + qᵀAq with A·q cached by the caller.
  // The expansion can go epsilon-negative near the query through
  // cancellation; clamp so distances stay comparable with the non-negative
  // rectangle bounds. NaN also fails the `> 0` test and clamps to +0.
  const double x_ax = QuadraticFormRowRef(a, x, d);
  const double x_aq = DotRowRef(x, aq, d);
  const double value = x_ax - 2.0 * x_aq + q_aq;
  return value > 0.0 ? value : 0.0;
}

inline double ComponentDistanceRef(const QuadComponentView& c,
                                   const double* x, int d, double* scratch) {
  if (c.diagonal != nullptr) return WeightedSqRowRef(c.diagonal, c.query, x, d);
  if (c.full != nullptr) {
    for (int i = 0; i < d; ++i) scratch[i] = x[i] - c.query[i];
    return QuadraticFormRowRef(c.full, scratch, d);
  }
  return SquaredL2RowRef(c.query, x, d);
}

inline double HarmonicRowRef(const HarmonicSpec& spec, const double* x, int d,
                             double* scratch) {
  // Eq. 5 accumulated inline, component order fixed. A zero per-component
  // distance means the point sits on a representative: the fuzzy OR yields
  // 0. NaN distances propagate through the denominator unharmed (NaN <= 0
  // is false), matching the lane-masked batch combine exactly.
  double denom = 0.0;
  for (std::size_t j = 0; j < spec.count; ++j) {
    const double d2 = ComponentDistanceRef(spec.components[j], x, d, scratch);
    if (d2 <= 0.0) return 0.0;
    denom += spec.components[j].weight / d2;
  }
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return spec.total_weight / denom;
}

inline double HarmonicSegmentsRowRef(const HarmonicSpec& spec,
                                     const double* row, int reduced) {
  double denom = 0.0;
  for (std::size_t j = 0; j < spec.count; ++j) {
    const double d2 = SquaredL2RowRef(
        spec.components[j].query, row + j * static_cast<std::size_t>(reduced),
        reduced);
    if (d2 <= 0.0) return 0.0;
    denom += spec.components[j].weight / d2;
  }
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return spec.total_weight / denom;
}

inline double WeightedRectRowRef(const double* w, const double* q,
                                 const double* lo, const double* hi, int d) {
  // Axis distance to [lo, hi] as max(0, lo−q) + max(0, q−hi): at most one
  // side is positive for a well-formed rectangle, and the `t > 0` clamp
  // sends NaN coordinates to +0.
  double sum = 0.0;
  for (int i = 0; i < d; ++i) {
    const double lo_side = lo[i] - q[i];
    const double hi_side = q[i] - hi[i];
    const double diff =
        (lo_side > 0.0 ? lo_side : 0.0) + (hi_side > 0.0 ? hi_side : 0.0);
    sum += w != nullptr ? (w[i] * diff) * diff : diff * diff;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Batch kernels, templated on the lane policy. Row r of a width-W group is
// lane r; tails run the row kernel, whose order the lanes mirror exactly.

template <class P>
struct KernelImpl {
  using V = typename P::V;
  using M = typename P::M;
  static constexpr int kWidth = P::kWidth;

  /// Per-thread transpose buffer: `len` elements of `kWidth` consecutive
  /// doubles, element i of lane r at [i * kWidth + r]. Grows once per
  /// thread and is reused across calls — no per-batch allocation in steady
  /// state.
  static double* TransposeScratch(std::size_t len) {
    static thread_local std::vector<double> buf;
    if (buf.size() < len * static_cast<std::size_t>(kWidth)) {
      buf.resize(len * static_cast<std::size_t>(kWidth));
    }
    return buf.data();
  }

  static void SquaredL2Batch(const double* q, const double* base,
                             std::size_t n, int d, double* out) {
    const std::size_t stride = static_cast<std::size_t>(d);
    std::size_t g = 0;
    if constexpr (kWidth > 1) {
      for (; g + kWidth <= n; g += kWidth) {
        const double* rows[kWidth];
        for (int r = 0; r < kWidth; ++r) rows[r] = base + (g + r) * stride;
        V acc = P::Zero();
        for (int i = 0; i < d; ++i) {
          const V diff = P::Sub(P::Broadcast(q[i]), P::Gather(rows, i));
          acc = P::Add(acc, P::Mul(diff, diff));
        }
        P::Store(out + g, acc);
      }
    }
    for (; g < n; ++g) out[g] = SquaredL2RowRef(q, base + g * stride, d);
  }

  static void WeightedSqBatch(const double* w, const double* q,
                              const double* base, std::size_t n, int d,
                              double* out) {
    const std::size_t stride = static_cast<std::size_t>(d);
    std::size_t g = 0;
    if constexpr (kWidth > 1) {
      for (; g + kWidth <= n; g += kWidth) {
        const double* rows[kWidth];
        for (int r = 0; r < kWidth; ++r) rows[r] = base + (g + r) * stride;
        V acc = P::Zero();
        for (int i = 0; i < d; ++i) {
          const V diff = P::Sub(P::Gather(rows, i), P::Broadcast(q[i]));
          acc = P::Add(acc, P::Mul(P::Mul(P::Broadcast(w[i]), diff), diff));
        }
        P::Store(out + g, acc);
      }
    }
    for (; g < n; ++g) out[g] = WeightedSqRowRef(w, q, base + g * stride, d);
  }

  /// xᵀAx with x pre-transposed at `xt` (element i of lane r at
  /// xt[i·kWidth + r]) — per lane the exact sequential order of
  /// QuadraticFormRowRef.
  static V QuadraticFormLanes(const double* a, const double* xt, int d) {
    V sum = P::Zero();
    const std::size_t stride = static_cast<std::size_t>(d);
    for (int r = 0; r < d; ++r) {
      const double* a_r = a + static_cast<std::size_t>(r) * stride;
      V dot = P::Zero();
      for (int c = 0; c < d; ++c) {
        dot = P::Add(dot, P::Mul(P::Broadcast(a_r[c]),
                                 P::Load(xt + c * kWidth)));
      }
      sum = P::Add(sum, P::Mul(P::Load(xt + r * kWidth), dot));
    }
    return sum;
  }

  static void MahalanobisBatch(const double* a, const double* aq, double q_aq,
                               const double* base, std::size_t n, int d,
                               double* out) {
    const std::size_t stride = static_cast<std::size_t>(d);
    std::size_t g = 0;
    if constexpr (kWidth > 1) {
      double* xt = TransposeScratch(static_cast<std::size_t>(d));
      for (; g + kWidth <= n; g += kWidth) {
        const double* rows[kWidth];
        for (int r = 0; r < kWidth; ++r) rows[r] = base + (g + r) * stride;
        for (int i = 0; i < d; ++i) P::Store(xt + i * kWidth, P::Gather(rows, i));
        const V x_ax = QuadraticFormLanes(a, xt, d);
        V x_aq = P::Zero();
        for (int i = 0; i < d; ++i) {
          x_aq = P::Add(x_aq, P::Mul(P::Load(xt + i * kWidth),
                                     P::Broadcast(aq[i])));
        }
        const V value = P::Add(
            P::Sub(x_ax, P::Mul(P::Broadcast(2.0), x_aq)), P::Broadcast(q_aq));
        P::Store(out + g, P::MaxZero(value));
      }
    }
    for (; g < n; ++g) {
      out[g] = MahalanobisRowRef(a, aq, q_aq, base + g * stride, d);
    }
  }

  /// One Eq. 5 component over transposed lanes; `dt` is a second d×kWidth
  /// staging area for full-matrix diffs.
  static V ComponentDistanceLanes(const QuadComponentView& c, const double* xt,
                                  int d, double* dt) {
    if (c.diagonal != nullptr) {
      V acc = P::Zero();
      for (int i = 0; i < d; ++i) {
        const V diff =
            P::Sub(P::Load(xt + i * kWidth), P::Broadcast(c.query[i]));
        acc = P::Add(acc,
                     P::Mul(P::Mul(P::Broadcast(c.diagonal[i]), diff), diff));
      }
      return acc;
    }
    if (c.full != nullptr) {
      for (int i = 0; i < d; ++i) {
        P::Store(dt + i * kWidth, P::Sub(P::Load(xt + i * kWidth),
                                         P::Broadcast(c.query[i])));
      }
      return QuadraticFormLanes(c.full, dt, d);
    }
    V acc = P::Zero();
    for (int i = 0; i < d; ++i) {
      const V diff = P::Sub(P::Broadcast(c.query[i]), P::Load(xt + i * kWidth));
      acc = P::Add(acc, P::Mul(diff, diff));
    }
    return acc;
  }

  /// Eq. 5 across lanes. The scalar early-exit on d²ⱼ <= 0 becomes a
  /// per-lane mask: flagged lanes keep accumulating (their denominators may
  /// absorb ±inf from the division) but the final select pins them to +0,
  /// which is exactly the value the early exit returns. NaN d² leaves the
  /// mask unset and poisons the denominator → NaN result, as in the row
  /// kernel.
  static V HarmonicLanes(const HarmonicSpec& spec, const double* xt, int d,
                         double* dt) {
    const V zero = P::Zero();
    M is_zero = P::FalseMask();
    V denom = zero;
    for (std::size_t j = 0; j < spec.count; ++j) {
      const V d2 = ComponentDistanceLanes(spec.components[j], xt, d, dt);
      is_zero = P::OrMask(is_zero, P::CmpLE(d2, zero));
      denom = P::Add(denom, P::Div(P::Broadcast(spec.components[j].weight), d2));
    }
    const V inf = P::Broadcast(std::numeric_limits<double>::infinity());
    const V ratio = P::Div(P::Broadcast(spec.total_weight), denom);
    const V result = P::Select(P::CmpLE(denom, zero), inf, ratio);
    return P::Select(is_zero, zero, result);
  }

  static void HarmonicBatch(const HarmonicSpec& spec, const double* base,
                            std::size_t n, int d, double* scratch,
                            double* out) {
    const std::size_t stride = static_cast<std::size_t>(d);
    std::size_t g = 0;
    if constexpr (kWidth > 1) {
      double* xt = TransposeScratch(2 * static_cast<std::size_t>(d));
      double* dt = xt + static_cast<std::size_t>(d) * kWidth;
      for (; g + kWidth <= n; g += kWidth) {
        const double* rows[kWidth];
        for (int r = 0; r < kWidth; ++r) rows[r] = base + (g + r) * stride;
        for (int i = 0; i < d; ++i) P::Store(xt + i * kWidth, P::Gather(rows, i));
        P::Store(out + g, HarmonicLanes(spec, xt, d, dt));
      }
    }
    for (; g < n; ++g) {
      out[g] = HarmonicRowRef(spec, base + g * stride, d, scratch);
    }
  }

  static void HarmonicSegmentsBatch(const HarmonicSpec& spec,
                                    const double* base, std::size_t n,
                                    int reduced, double* out) {
    const std::size_t stride = spec.count * static_cast<std::size_t>(reduced);
    std::size_t g = 0;
    if constexpr (kWidth > 1) {
      const V zero = P::Zero();
      for (; g + kWidth <= n; g += kWidth) {
        const double* rows[kWidth];
        for (int r = 0; r < kWidth; ++r) rows[r] = base + (g + r) * stride;
        M is_zero = P::FalseMask();
        V denom = zero;
        for (std::size_t j = 0; j < spec.count; ++j) {
          const double* q = spec.components[j].query;
          const int off = static_cast<int>(j) * reduced;
          V acc = P::Zero();
          for (int i = 0; i < reduced; ++i) {
            const V diff =
                P::Sub(P::Broadcast(q[i]), P::Gather(rows, off + i));
            acc = P::Add(acc, P::Mul(diff, diff));
          }
          is_zero = P::OrMask(is_zero, P::CmpLE(acc, zero));
          denom = P::Add(
              denom, P::Div(P::Broadcast(spec.components[j].weight), acc));
        }
        const V inf = P::Broadcast(std::numeric_limits<double>::infinity());
        const V ratio = P::Div(P::Broadcast(spec.total_weight), denom);
        V result = P::Select(P::CmpLE(denom, zero), inf, ratio);
        result = P::Select(is_zero, zero, result);
        P::Store(out + g, result);
      }
    }
    for (; g < n; ++g) {
      out[g] = HarmonicSegmentsRowRef(spec, base + g * stride, reduced);
    }
  }
};

/// Builds a tier's dispatch table from its policy instantiation. Row
/// kernels are the shared canonical reference on every tier; only the
/// batch kernels differ in how many rows they carry per step.
template <class P>
constexpr KernelTable MakeTable(Tier tier) {
  using K = KernelImpl<P>;
  return KernelTable{
      tier,
      &SquaredL2RowRef,
      &WeightedSqRowRef,
      &DotRowRef,
      &QuadraticFormRowRef,
      &MahalanobisRowRef,
      &HarmonicRowRef,
      &HarmonicSegmentsRowRef,
      &WeightedRectRowRef,
      &K::SquaredL2Batch,
      &K::WeightedSqBatch,
      &K::MahalanobisBatch,
      &K::HarmonicBatch,
      &K::HarmonicSegmentsBatch,
  };
}

}  // namespace qcluster::linalg::simd::internal

#endif  // QCLUSTER_LINALG_SIMD_KERNELS_H_
