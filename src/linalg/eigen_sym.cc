#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace qcluster::linalg {

Result<SymmetricEigen> EigenSymmetric(const Matrix& a, int max_sweeps,
                                      double tol) {
  QCLUSTER_CHECK(a.rows() == a.cols());
  // Symmetry tolerance is relative to the matrix scale: inverse covariance
  // matrices can carry entries of 1e4 and beyond, where an absolute 1e-8
  // would reject benign rounding noise.
  double max_abs = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      max_abs = std::max(max_abs, std::abs(a(r, c)));
    }
  }
  QCLUSTER_CHECK_MSG(a.IsSymmetric(1e-8 * (1.0 + max_abs)),
                     "EigenSymmetric needs symmetry");
  const int n = a.rows();
  Matrix d = a;                   // Working copy, driven to diagonal form.
  Matrix v = Matrix::Identity(n); // Accumulated rotations.

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Total off-diagonal magnitude decides convergence.
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += std::abs(d(p, q));
    }
    if (off <= tol) {
      SymmetricEigen out;
      out.values.resize(static_cast<std::size_t>(n));
      std::vector<int> order(static_cast<std::size_t>(n));
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&d](int i, int j) { return d(i, i) > d(j, j); });
      out.vectors = Matrix(n, n);
      for (int c = 0; c < n; ++c) {
        const int src = order[static_cast<std::size_t>(c)];
        out.values[static_cast<std::size_t>(c)] = d(src, src);
        for (int r = 0; r < n; ++r) out.vectors(r, c) = v(r, src);
      }
      return out;
    }

    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) < 1e-300) continue;
        // Classic Jacobi rotation zeroing d(p, q).
        const double theta = (d(q, q) - d(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        const double dpp = d(p, p);
        const double dqq = d(q, q);
        d(p, p) = dpp - t * apq;
        d(q, q) = dqq + t * apq;
        d(p, q) = 0.0;
        d(q, p) = 0.0;
        for (int i = 0; i < n; ++i) {
          if (i != p && i != q) {
            const double dip = d(i, p);
            const double diq = d(i, q);
            d(i, p) = dip - s * (diq + tau * dip);
            d(p, i) = d(i, p);
            d(i, q) = diq + s * (dip - tau * diq);
            d(q, i) = d(i, q);
          }
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = vip - s * (viq + tau * vip);
          v(i, q) = viq + s * (vip - tau * viq);
        }
      }
    }
  }
  return Status::NotConverged("Jacobi eigensolver exceeded sweep limit");
}

}  // namespace qcluster::linalg
