#ifndef QCLUSTER_LINALG_PCA_H_
#define QCLUSTER_LINALG_PCA_H_

#include "common/status.h"
#include "linalg/eigen_sym.h"
#include "linalg/flat_view.h"
#include "linalg/matrix.h"

namespace qcluster::linalg {

/// Principal component analysis as used in Sec. 4.4 of the paper: fitted on a
/// sample X, the transform is z = G_k^T (x - mean) where the columns of G are
/// eigenvectors of the sample covariance sorted by descending eigenvalue.
class Pca {
 public:
  /// Fits a PCA model on `rows` sample vectors (each of equal dimension).
  /// Requires at least one sample. Fails only if the eigensolver diverges.
  [[nodiscard]] static Result<Pca> Fit(const std::vector<Vector>& rows);

  /// Input dimensionality p.
  int input_dim() const { return static_cast<int>(mean_.size()); }

  /// The sample mean used for centering.
  const Vector& mean() const { return mean_; }

  /// Eigenvalues of the sample covariance, descending. These are the
  /// variances λ_i of the principal components.
  const Vector& eigenvalues() const { return eigen_.values; }

  /// Eigenvector matrix G; column i is the i-th principal direction.
  const Matrix& components() const { return eigen_.vectors; }

  /// Smallest k such that the first k components cover at least
  /// `1 - epsilon` of the total variance (Sec. 4.4.4, ε <= 0.15). Returns
  /// input_dim() when total variance is zero.
  int ComponentsForVarianceRatio(double epsilon) const;

  /// Fraction of total variance covered by the first k components.
  double VarianceRatio(int k) const;

  /// Projects `x` onto the first `k` principal components.
  Vector Transform(const Vector& x, int k) const;

  /// Projects every row of `rows` onto the first `k` components.
  std::vector<Vector> TransformAll(const std::vector<Vector>& rows,
                                   int k) const;

  /// Reconstructs an approximation of the original vector from a k-dim
  /// projection: x ≈ mean + G_k z.
  Vector InverseTransform(const Vector& z) const;

 private:
  Pca(Vector mean, SymmetricEigen eigen)
      : mean_(std::move(mean)), eigen_(std::move(eigen)) {}

  Vector mean_;
  SymmetricEigen eigen_;
};

/// A contractive linear map for the quadratic-form metric
/// d²(x, q) = (x − q)' A (x − q), the GEMINI-style lower-bound transform
/// behind the filter-and-refine index.
///
/// The map is P = G_k' A^{1/2}: A^{1/2} whitens the metric — in whitened
/// coordinates the quadratic form is a plain squared Euclidean norm, which
/// is exactly the rotation argument of Theorem 1 / Eq. 17-18 — and G
/// collects the principal directions of the whitened sample so the k kept
/// coordinates carry as much of the distance mass as possible. Because G is
/// orthonormal, dropping coordinates only shrinks the norm:
///
///   ||P(x − q)||² = ||G_k' A^{1/2}(x − q)||² <= ||A^{1/2}(x − q)||²
///                 = (x − q)' A (x − q),
///
/// with equality at k = input_dim (Eq. 18: the full rotation preserves the
/// form). The bound holds for any orthonormal basis; the principal fit only
/// affects how tightly it prunes, never correctness.
class Projector {
 public:
  /// Projector for a diagonal metric A = diag(`diagonal_a`) (entries >= 0,
  /// the covariance scheme the paper adopts). `sample` supplies rows for
  /// the principal-basis fit (a deterministic subsample is used when large);
  /// `k` is the output dimensionality, clamped to [1, dim].
  [[nodiscard]] static Projector FitDiagonal(const Vector& diagonal_a,
                                             const FlatView& sample, int k);

  /// Projector for a full symmetric PSD metric `a`. Falls back to the
  /// spectral-floor whitener sqrt(λ_lower)·I (Gershgorin bound) when the
  /// eigendecomposition of `a` diverges — looser but still contractive.
  [[nodiscard]] static Projector Fit(const Matrix& a, const FlatView& sample,
                                     int k);

  /// True when the factory certified the contractive bound for the metric
  /// it was given. Diagonal metrics always certify (entries are checked
  /// non-negative and their quadratic form accumulates without
  /// cancellation). A full metric certifies only when its spectrum is
  /// strictly positive with λ_min >= 1e-12·λ_max: an indefinite or
  /// worse-conditioned `a` can round its *exact* full-dimension form to
  /// <= 0 for distinct points, in which case no non-negative reduced
  /// distance is a valid lower bound and callers must not prune with this
  /// projector (Project then yields all-zero coordinates).
  [[nodiscard]] bool contractive() const { return contractive_; }

  int input_dim() const { return p_.cols(); }
  int output_dim() const { return p_.rows(); }

  /// Writes the output_dim() projected coordinates of the raw point `x`
  /// (input_dim() doubles) into `out`.
  void Project(const double* x, double* out) const;

  /// Convenience wrapper over the raw-pointer entry point.
  Vector Project(const Vector& x) const;

 private:
  Projector(Matrix p, bool contractive)
      : p_(std::move(p)), contractive_(contractive) {}

  /// Shared tail of the factories: fits the principal basis of the
  /// whitened sample and composes it with the whitener.
  [[nodiscard]] static Projector Compose(const Matrix& whitener,
                                         const FlatView& sample, int k);

  Matrix p_;  ///< k × dim row-major map G_k' A^{1/2}.
  bool contractive_ = true;
};

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_PCA_H_
