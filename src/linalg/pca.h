#ifndef QCLUSTER_LINALG_PCA_H_
#define QCLUSTER_LINALG_PCA_H_

#include "common/status.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"

namespace qcluster::linalg {

/// Principal component analysis as used in Sec. 4.4 of the paper: fitted on a
/// sample X, the transform is z = G_k^T (x - mean) where the columns of G are
/// eigenvectors of the sample covariance sorted by descending eigenvalue.
class Pca {
 public:
  /// Fits a PCA model on `rows` sample vectors (each of equal dimension).
  /// Requires at least one sample. Fails only if the eigensolver diverges.
  static Result<Pca> Fit(const std::vector<Vector>& rows);

  /// Input dimensionality p.
  int input_dim() const { return static_cast<int>(mean_.size()); }

  /// The sample mean used for centering.
  const Vector& mean() const { return mean_; }

  /// Eigenvalues of the sample covariance, descending. These are the
  /// variances λ_i of the principal components.
  const Vector& eigenvalues() const { return eigen_.values; }

  /// Eigenvector matrix G; column i is the i-th principal direction.
  const Matrix& components() const { return eigen_.vectors; }

  /// Smallest k such that the first k components cover at least
  /// `1 - epsilon` of the total variance (Sec. 4.4.4, ε <= 0.15). Returns
  /// input_dim() when total variance is zero.
  int ComponentsForVarianceRatio(double epsilon) const;

  /// Fraction of total variance covered by the first k components.
  double VarianceRatio(int k) const;

  /// Projects `x` onto the first `k` principal components.
  Vector Transform(const Vector& x, int k) const;

  /// Projects every row of `rows` onto the first `k` components.
  std::vector<Vector> TransformAll(const std::vector<Vector>& rows,
                                   int k) const;

  /// Reconstructs an approximation of the original vector from a k-dim
  /// projection: x ≈ mean + G_k z.
  Vector InverseTransform(const Vector& z) const;

 private:
  Pca(Vector mean, SymmetricEigen eigen)
      : mean_(std::move(mean)), eigen_(std::move(eigen)) {}

  Vector mean_;
  SymmetricEigen eigen_;
};

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_PCA_H_
