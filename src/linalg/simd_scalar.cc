// Scalar dispatch tier: one row per batch step, so every batch kernel
// degrades to a loop over the canonical row kernels. This tier exists on
// every build and is the reference the wider tiers must match byte for
// byte; it is also the tier QCLUSTER_SIMD=scalar forces in CI to prove
// dispatch independence.

#include "linalg/simd_kernels.h"

namespace qcluster::linalg::simd::internal {

namespace {

/// Width-1 policy: no lane ops are ever instantiated — the batch bodies
/// discard their vector branches at compile time and fall through to the
/// row kernels.
struct ScalarPolicy {
  static constexpr int kWidth = 1;
  using V = double;
  using M = bool;
};

constexpr KernelTable kTable = MakeTable<ScalarPolicy>(Tier::kScalar);

}  // namespace

const KernelTable* ScalarTable() { return &kTable; }

}  // namespace qcluster::linalg::simd::internal
