#ifndef QCLUSTER_LINALG_VECTOR_H_
#define QCLUSTER_LINALG_VECTOR_H_

#include <cstddef>
#include <vector>

namespace qcluster::linalg {

/// Feature vectors are plain contiguous arrays of doubles. The library
/// deliberately uses a type alias rather than a wrapper class so vectors
/// interoperate directly with STL algorithms and user code.
using Vector = std::vector<double>;

/// Returns the dot product of `a` and `b`. Requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Returns the Euclidean norm of `a`.
double Norm(const Vector& a);

/// Returns the squared Euclidean norm of `a`.
double SquaredNorm(const Vector& a);

/// Returns the Euclidean distance between `a` and `b`.
double Distance(const Vector& a, const Vector& b);

/// Returns the squared Euclidean distance between `a` and `b`.
double SquaredDistance(const Vector& a, const Vector& b);

/// Returns `a + b` element-wise. Requires equal sizes.
Vector Add(const Vector& a, const Vector& b);

/// Returns `a - b` element-wise. Requires equal sizes.
Vector Sub(const Vector& a, const Vector& b);

/// Returns `s * a`.
Vector Scale(const Vector& a, double s);

/// Computes `y += s * x` in place. Requires equal sizes.
void Axpy(double s, const Vector& x, Vector& y);

/// Returns true if every |a_i - b_i| <= tol.
bool AllClose(const Vector& a, const Vector& b, double tol);

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_VECTOR_H_
