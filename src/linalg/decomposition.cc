#include "linalg/decomposition.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qcluster::linalg {

Vector CholeskyFactor::Solve(const Vector& b) const {
  const int n = l.rows();
  QCLUSTER_CHECK(static_cast<int>(b.size()) == n);
  // Forward substitution: L y = b.
  Vector y(b);
  for (int i = 0; i < n; ++i) {
    double sum = y[static_cast<std::size_t>(i)];
    for (int j = 0; j < i; ++j) sum -= l(i, j) * y[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) sum -= l(j, i) * y[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = sum / l(i, i);
  }
  return y;
}

double CholeskyFactor::LogDeterminant() const {
  double sum = 0.0;
  for (int i = 0; i < l.rows(); ++i) sum += std::log(l(i, i));
  return 2.0 * sum;
}

Result<CholeskyFactor> Cholesky(const Matrix& a) {
  QCLUSTER_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  // An SPD matrix attains its largest element on the diagonal, so the
  // max diagonal entry scales the matrix. Pivots that fall below it by
  // more than the relative threshold are rounding residue of a
  // rank-deficient matrix; factoring through them "succeeds" numerically
  // but yields an explosive, typically indefinite inverse.
  double max_diag = 0.0;
  for (int j = 0; j < n; ++j) max_diag = std::max(max_diag, a(j, j));
  const double min_pivot = 1e-12 * max_diag;
  Matrix l(n, n, 0.0);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= min_pivot || !std::isfinite(diag)) {
      return Status::SingularMatrix(
          "matrix is not numerically positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return CholeskyFactor{std::move(l)};
}

Vector LuFactor::Solve(const Vector& b) const {
  const int n = lu.rows();
  QCLUSTER_CHECK(static_cast<int>(b.size()) == n);
  Vector x(static_cast<std::size_t>(n));
  // Apply permutation and forward substitution with unit-diagonal L.
  for (int i = 0; i < n; ++i) {
    double sum = b[static_cast<std::size_t>(piv[static_cast<std::size_t>(i)])];
    for (int j = 0; j < i; ++j) sum -= lu(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum;
  }
  // Back substitution with U.
  for (int i = n - 1; i >= 0; --i) {
    double sum = x[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) sum -= lu(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = sum / lu(i, i);
  }
  return x;
}

double LuFactor::Determinant() const {
  double det = sign;
  for (int i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

Result<LuFactor> Lu(const Matrix& a) {
  QCLUSTER_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  LuFactor f;
  f.lu = a;
  f.piv.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) f.piv[static_cast<std::size_t>(i)] = i;
  f.sign = 1;

  for (int col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest remaining entry in this column.
    int pivot_row = col;
    double best = std::abs(f.lu(col, col));
    for (int r = col + 1; r < n; ++r) {
      const double v = std::abs(f.lu(r, col));
      if (v > best) {
        best = v;
        pivot_row = r;
      }
    }
    if (best < 1e-300 || !std::isfinite(best)) {
      return Status::SingularMatrix("zero pivot in LU factorization");
    }
    if (pivot_row != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(f.lu(col, c), f.lu(pivot_row, c));
      }
      std::swap(f.piv[static_cast<std::size_t>(col)],
                f.piv[static_cast<std::size_t>(pivot_row)]);
      f.sign = -f.sign;
    }
    const double pivot = f.lu(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double factor = f.lu(r, col) / pivot;
      f.lu(r, col) = factor;
      for (int c = col + 1; c < n; ++c) {
        f.lu(r, c) -= factor * f.lu(col, c);
      }
    }
  }
  return f;
}

Result<Matrix> Inverse(const Matrix& a) {
  Result<LuFactor> lu = Lu(a);
  if (!lu.ok()) return lu.status();
  const int n = a.rows();
  Matrix inv(n, n);
  Vector e(static_cast<std::size_t>(n), 0.0);
  for (int c = 0; c < n; ++c) {
    e[static_cast<std::size_t>(c)] = 1.0;
    const Vector col = lu.value().Solve(e);
    for (int r = 0; r < n; ++r) inv(r, c) = col[static_cast<std::size_t>(r)];
    e[static_cast<std::size_t>(c)] = 0.0;
  }
  return inv;
}

Result<Matrix> InverseSpd(const Matrix& a) {
  // No LU fallback: when Cholesky rejects the matrix as numerically
  // singular, LU with partial pivoting often still "succeeds" through the
  // same tiny pivots and returns a garbage (indefinite) inverse with an ok
  // status. Callers that can regularize (stats::InvertCovariance) must see
  // the failure instead.
  Result<CholeskyFactor> chol = Cholesky(a);
  if (!chol.ok()) return chol.status();
  const int n = a.rows();
  Matrix inv(n, n);
  Vector e(static_cast<std::size_t>(n), 0.0);
  for (int c = 0; c < n; ++c) {
    e[static_cast<std::size_t>(c)] = 1.0;
    const Vector col = chol.value().Solve(e);
    for (int r = 0; r < n; ++r) inv(r, c) = col[static_cast<std::size_t>(r)];
    e[static_cast<std::size_t>(c)] = 0.0;
  }
  return inv;
}

double Determinant(const Matrix& a) {
  Result<LuFactor> lu = Lu(a);
  if (!lu.ok()) return 0.0;
  return lu.value().Determinant();
}

Result<Vector> Solve(const Matrix& a, const Vector& b) {
  Result<LuFactor> lu = Lu(a);
  if (!lu.ok()) return lu.status();
  return lu.value().Solve(b);
}

}  // namespace qcluster::linalg
