#ifndef QCLUSTER_LINALG_MATRIX_H_
#define QCLUSTER_LINALG_MATRIX_H_

#include <initializer_list>
#include <string>

#include "linalg/vector.h"

namespace qcluster::linalg {

/// Dense row-major matrix of doubles with runtime dimensions.
///
/// Qcluster works with small covariance matrices (feature dimension p is
/// typically 3-16 after PCA), so a simple contiguous layout without
/// expression templates is both sufficient and the easiest to audit.
class Matrix {
 public:
  /// Constructs an empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Constructs a `rows` x `cols` matrix filled with `fill`.
  Matrix(int rows, int cols, double fill = 0.0);

  /// Constructs from nested initializer lists; all rows must have equal
  /// length. Intended for tests and examples.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Returns the `n` x `n` identity matrix.
  static Matrix Identity(int n);

  /// Returns a square matrix with `diag` on its diagonal.
  static Matrix Diagonal(const Vector& diag);

  /// Returns a matrix whose rows are the given vectors (all equal length).
  static Matrix FromRows(const std::vector<Vector>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(int r, int c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  /// Raw row-major storage (rows() * cols() doubles). The pointer the SIMD
  /// quadratic-form kernels walk; row r starts at data() + r * cols().
  const double* data() const { return data_.data(); }

  /// Returns row `r` as a vector copy.
  Vector Row(int r) const;

  /// Returns column `c` as a vector copy.
  Vector Col(int c) const;

  /// Overwrites row `r`. Requires `values.size() == cols()`.
  void SetRow(int r, const Vector& values);

  /// Returns the main diagonal (length min(rows, cols)).
  Vector Diag() const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Returns this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Returns this * x as a vector. Requires x.size() == cols().
  Vector MatVec(const Vector& x) const;

  /// Returns this^T * x. Requires x.size() == rows().
  Vector TransposedMatVec(const Vector& x) const;

  /// Returns this + other (same shape).
  Matrix Add(const Matrix& other) const;

  /// Returns this - other (same shape).
  Matrix Sub(const Matrix& other) const;

  /// Returns s * this.
  Matrix Scale(double s) const;

  /// Adds `value` to every diagonal entry in place (regularization).
  void AddToDiagonal(double value);

  /// Returns the sum of squares of all entries, squared Frobenius norm.
  double SquaredFrobeniusNorm() const;

  /// Returns the trace (square matrices only).
  double Trace() const;

  /// Returns true if the matrix is square and max |A - A^T| <= tol.
  bool IsSymmetric(double tol = 1e-9) const;

  /// Returns the sub-matrix made of the first `k` columns.
  Matrix LeadingColumns(int k) const;

  /// Multi-line human readable rendering, for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Returns the outer product a * b^T as an |a| x |b| matrix.
Matrix OuterProduct(const Vector& a, const Vector& b);

/// Returns x^T * m * y. Requires matching dimensions. This is the quadratic
/// form at the heart of every distance in the paper (Eq. 1, 7, 14).
double QuadraticForm(const Vector& x, const Matrix& m, const Vector& y);

/// Returns true if shapes match and all entries differ by at most `tol`.
bool AllClose(const Matrix& a, const Matrix& b, double tol);

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_MATRIX_H_
