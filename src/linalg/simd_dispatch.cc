// Runtime kernel dispatch: picks the widest tier the running CPU supports
// (or the QCLUSTER_SIMD override) once, then serves it through one atomic
// load per call site. All tiers are byte-identical by construction (see the
// canonical reduction-order contract in simd.h), so the choice is purely a
// throughput decision — results never depend on it.

#include "linalg/simd.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"

namespace qcluster::linalg::simd {

namespace {

/// The QCLUSTER_SIMD preference, parsed once pre-main (static init is
/// single-threaded, so plain fields are race-free afterwards).
struct EnvPreference {
  bool forced = false;  ///< False: auto — pick the best available tier.
  Tier tier = Tier::kScalar;
  std::string raw;  ///< Original value, for the one-time warning.
  bool unknown = false;
};

EnvPreference& Preference() {
  static EnvPreference pref;
  return pref;
}

Mutex& DispatchMutex() {
  static Mutex* mu = new Mutex();
  return *mu;
}

std::atomic<const KernelTable*>& ActiveTable() {
  static std::atomic<const KernelTable*> active{nullptr};
  return active;
}

const KernelTable* TableFor(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return internal::ScalarTable();
    case Tier::kWidth2:
      return internal::Width2Table();
    case Tier::kWidth4:
      return internal::Width4Table();
  }
  return nullptr;
}

bool CpuSupports(Tier tier) {
  if (tier == Tier::kScalar || tier == Tier::kWidth2) {
    // Width-2 is baseline for every architecture it compiles on (SSE2 on
    // x86-64, NEON on AArch64); availability is the compile-time table.
    return true;
  }
#if defined(__x86_64__) || defined(__i386__)
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  return has_avx2;
#else
  return false;
#endif
}

Tier BestAvailable() {
  if (TierAvailable(Tier::kWidth4)) return Tier::kWidth4;
  if (TierAvailable(Tier::kWidth2)) return Tier::kWidth2;
  return Tier::kScalar;
}

// No GUARDED_BY fields here: the published pointer is atomic and the gauge
// is internally synchronized. DispatchMutex() only serializes resolution so
// the warn-once logs and publish order stay coherent.
void Publish(const KernelTable* table) {
  ActiveTable().store(table, std::memory_order_release);
  MetricGauge("simd.dispatch_tier", static_cast<double>(table->tier));
}

/// Resolves and publishes the default tier (env preference, else best
/// available). Called lazily from the first Kernels() and from
/// ResetTierFromEnv.
const KernelTable* ResolveDefault() {
  MutexLock lock(DispatchMutex());
  const EnvPreference& pref = Preference();
  Tier tier = BestAvailable();
  if (pref.unknown) {
    QCLUSTER_LOG(kWarning) << "QCLUSTER_SIMD=" << pref.raw
                           << " not recognized (want scalar|sse2|neon|avx2|"
                              "auto); using "
                           << TierName(tier);
  } else if (pref.forced) {
    if (TierAvailable(pref.tier)) {
      tier = pref.tier;
    } else {
      QCLUSTER_LOG(kWarning)
          << "QCLUSTER_SIMD=" << pref.raw
          << " unavailable on this host; using " << TierName(tier);
    }
  }
  const KernelTable* table = TableFor(tier);
  QCLUSTER_CHECK(table != nullptr);
  QCLUSTER_LOG(kDebug) << "simd dispatch: " << TierName(tier);
  Publish(table);
  return table;
}

}  // namespace

const KernelTable& Kernels() {
  const KernelTable* table = ActiveTable().load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  return *ResolveDefault();
}

Tier ActiveTier() { return Kernels().tier; }

bool TierAvailable(Tier tier) {
  return TableFor(tier) != nullptr && CpuSupports(tier);
}

bool SetTier(Tier tier) {
  if (!TierAvailable(tier)) return false;
  MutexLock lock(DispatchMutex());
  Publish(TableFor(tier));
  return true;
}

void ResetTierFromEnv() {
  {
    MutexLock lock(DispatchMutex());
    ActiveTable().store(nullptr, std::memory_order_release);
  }
  (void)ResolveDefault();
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kWidth2:
#if defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__)
      return "neon";
#else
      return "sse2";
#endif
    case Tier::kWidth4:
      return "avx2";
  }
  return "unknown";
}

namespace internal {

bool InitSimdFromEnv() {
  static const bool applied = [] {
    const char* value = std::getenv("QCLUSTER_SIMD");
    if (value == nullptr || value[0] == '\0') return true;
    EnvPreference& pref = Preference();
    pref.raw = value;
    std::string lower;
    lower.reserve(pref.raw.size());
    for (char c : pref.raw) {
      lower.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lower == "auto") return true;
    pref.forced = true;
    if (lower == "scalar") {
      pref.tier = Tier::kScalar;
    } else if (lower == "sse2" || lower == "neon" || lower == "w2") {
      pref.tier = Tier::kWidth2;
    } else if (lower == "avx2" || lower == "w4") {
      pref.tier = Tier::kWidth4;
    } else {
      pref.forced = false;
      pref.unknown = true;
    }
    return true;
  }();
  return applied;
}

}  // namespace internal

}  // namespace qcluster::linalg::simd
