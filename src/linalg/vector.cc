#include "linalg/vector.h"

#include <cmath>

#include "common/check.h"

namespace qcluster::linalg {

double Dot(const Vector& a, const Vector& b) {
  QCLUSTER_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm(const Vector& a) { return std::sqrt(SquaredNorm(a)); }

double SquaredNorm(const Vector& a) { return Dot(a, a); }

double Distance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const Vector& a, const Vector& b) {
  QCLUSTER_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

Vector Add(const Vector& a, const Vector& b) {
  QCLUSTER_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  QCLUSTER_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = s * a[i];
  return out;
}

void Axpy(double s, const Vector& x, Vector& y) {
  QCLUSTER_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += s * x[i];
}

bool AllClose(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace qcluster::linalg
