#include "linalg/pca.h"

#include <cmath>

#include "common/check.h"

namespace qcluster::linalg {

Result<Pca> Pca::Fit(const std::vector<Vector>& rows) {
  QCLUSTER_CHECK_MSG(!rows.empty(), "PCA needs at least one sample");
  const std::size_t p = rows.front().size();
  Vector mean(p, 0.0);
  for (const Vector& r : rows) {
    QCLUSTER_CHECK(r.size() == p);
    for (std::size_t j = 0; j < p; ++j) mean[j] += r[j];
  }
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (double& m : mean) m *= inv_n;

  // Sample covariance with 1/n normalization; the normalization constant
  // does not affect directions or variance ratios.
  Matrix cov(static_cast<int>(p), static_cast<int>(p), 0.0);
  for (const Vector& r : rows) {
    for (std::size_t i = 0; i < p; ++i) {
      const double di = r[i] - mean[i];
      for (std::size_t j = i; j < p; ++j) {
        cov(static_cast<int>(i), static_cast<int>(j)) += di * (r[j] - mean[j]);
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) {
      const double v = cov(static_cast<int>(i), static_cast<int>(j)) * inv_n;
      cov(static_cast<int>(i), static_cast<int>(j)) = v;
      cov(static_cast<int>(j), static_cast<int>(i)) = v;
    }
  }

  Result<SymmetricEigen> eigen = EigenSymmetric(cov);
  if (!eigen.ok()) return eigen.status();
  return Pca(std::move(mean), std::move(eigen).value());
}

int Pca::ComponentsForVarianceRatio(double epsilon) const {
  QCLUSTER_CHECK(0.0 <= epsilon && epsilon < 1.0);
  double total = 0.0;
  for (double v : eigen_.values) total += std::max(v, 0.0);
  if (total <= 0.0) return input_dim();
  double acc = 0.0;
  for (int k = 1; k <= input_dim(); ++k) {
    acc += std::max(eigen_.values[static_cast<std::size_t>(k - 1)], 0.0);
    if (acc / total >= 1.0 - epsilon) return k;
  }
  return input_dim();
}

double Pca::VarianceRatio(int k) const {
  QCLUSTER_CHECK(0 <= k && k <= input_dim());
  double total = 0.0;
  for (double v : eigen_.values) total += std::max(v, 0.0);
  if (total <= 0.0) return 1.0;
  double acc = 0.0;
  for (int i = 0; i < k; ++i) {
    acc += std::max(eigen_.values[static_cast<std::size_t>(i)], 0.0);
  }
  return acc / total;
}

Vector Pca::Transform(const Vector& x, int k) const {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == input_dim());
  QCLUSTER_CHECK(0 < k && k <= input_dim());
  Vector centered = Sub(x, mean_);
  Vector z(static_cast<std::size_t>(k), 0.0);
  for (int c = 0; c < k; ++c) {
    double sum = 0.0;
    for (int r = 0; r < input_dim(); ++r) {
      sum += eigen_.vectors(r, c) * centered[static_cast<std::size_t>(r)];
    }
    z[static_cast<std::size_t>(c)] = sum;
  }
  return z;
}

std::vector<Vector> Pca::TransformAll(const std::vector<Vector>& rows,
                                      int k) const {
  std::vector<Vector> out;
  out.reserve(rows.size());
  for (const Vector& r : rows) out.push_back(Transform(r, k));
  return out;
}

Vector Pca::InverseTransform(const Vector& z) const {
  const int k = static_cast<int>(z.size());
  QCLUSTER_CHECK(0 < k && k <= input_dim());
  Vector x = mean_;
  for (int c = 0; c < k; ++c) {
    const double zc = z[static_cast<std::size_t>(c)];
    for (int r = 0; r < input_dim(); ++r) {
      x[static_cast<std::size_t>(r)] += eigen_.vectors(r, c) * zc;
    }
  }
  return x;
}

}  // namespace qcluster::linalg
