#include "linalg/pca.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace qcluster::linalg {

Result<Pca> Pca::Fit(const std::vector<Vector>& rows) {
  QCLUSTER_CHECK_MSG(!rows.empty(), "PCA needs at least one sample");
  const std::size_t p = rows.front().size();
  Vector mean(p, 0.0);
  for (const Vector& r : rows) {
    QCLUSTER_CHECK(r.size() == p);
    for (std::size_t j = 0; j < p; ++j) mean[j] += r[j];
  }
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (double& m : mean) m *= inv_n;

  // Sample covariance with 1/n normalization; the normalization constant
  // does not affect directions or variance ratios.
  Matrix cov(static_cast<int>(p), static_cast<int>(p), 0.0);
  for (const Vector& r : rows) {
    for (std::size_t i = 0; i < p; ++i) {
      const double di = r[i] - mean[i];
      for (std::size_t j = i; j < p; ++j) {
        cov(static_cast<int>(i), static_cast<int>(j)) += di * (r[j] - mean[j]);
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) {
      const double v = cov(static_cast<int>(i), static_cast<int>(j)) * inv_n;
      cov(static_cast<int>(i), static_cast<int>(j)) = v;
      cov(static_cast<int>(j), static_cast<int>(i)) = v;
    }
  }

  Result<SymmetricEigen> eigen = EigenSymmetric(cov);
  if (!eigen.ok()) return eigen.status();
  return Pca(std::move(mean), std::move(eigen).value());
}

int Pca::ComponentsForVarianceRatio(double epsilon) const {
  QCLUSTER_CHECK(0.0 <= epsilon && epsilon < 1.0);
  double total = 0.0;
  for (double v : eigen_.values) total += std::max(v, 0.0);
  if (total <= 0.0) return input_dim();
  double acc = 0.0;
  for (int k = 1; k <= input_dim(); ++k) {
    acc += std::max(eigen_.values[static_cast<std::size_t>(k - 1)], 0.0);
    if (acc / total >= 1.0 - epsilon) return k;
  }
  return input_dim();
}

double Pca::VarianceRatio(int k) const {
  QCLUSTER_CHECK(0 <= k && k <= input_dim());
  double total = 0.0;
  for (double v : eigen_.values) total += std::max(v, 0.0);
  if (total <= 0.0) return 1.0;
  double acc = 0.0;
  for (int i = 0; i < k; ++i) {
    acc += std::max(eigen_.values[static_cast<std::size_t>(i)], 0.0);
  }
  return acc / total;
}

Vector Pca::Transform(const Vector& x, int k) const {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == input_dim());
  QCLUSTER_CHECK(0 < k && k <= input_dim());
  Vector centered = Sub(x, mean_);
  Vector z(static_cast<std::size_t>(k), 0.0);
  for (int c = 0; c < k; ++c) {
    double sum = 0.0;
    for (int r = 0; r < input_dim(); ++r) {
      sum += eigen_.vectors(r, c) * centered[static_cast<std::size_t>(r)];
    }
    z[static_cast<std::size_t>(c)] = sum;
  }
  return z;
}

std::vector<Vector> Pca::TransformAll(const std::vector<Vector>& rows,
                                      int k) const {
  std::vector<Vector> out;
  out.reserve(rows.size());
  for (const Vector& r : rows) out.push_back(Transform(r, k));
  return out;
}

Vector Pca::InverseTransform(const Vector& z) const {
  const int k = static_cast<int>(z.size());
  QCLUSTER_CHECK(0 < k && k <= input_dim());
  Vector x = mean_;
  for (int c = 0; c < k; ++c) {
    const double zc = z[static_cast<std::size_t>(c)];
    for (int r = 0; r < input_dim(); ++r) {
      x[static_cast<std::size_t>(r)] += eigen_.vectors(r, c) * zc;
    }
  }
  return x;
}

namespace {

/// Cap on the rows used for the Projector's principal-basis fit. Any
/// orthonormal basis keeps the projector contractive, so subsampling only
/// trades a little pruning tightness for an O(sample·d²) instead of
/// O(n·d²) fit.
constexpr std::size_t kMaxFitSample = 2048;

/// Deterministic stride subsample of `view`, whitened through `whitener`.
std::vector<Vector> WhitenedSample(const Matrix& whitener,
                                   const FlatView& view) {
  const std::size_t stride =
      view.n <= kMaxFitSample ? 1 : (view.n + kMaxFitSample - 1) / kMaxFitSample;
  const int d = view.dim;
  std::vector<Vector> rows;
  rows.reserve(view.n / stride + 1);
  Vector y(static_cast<std::size_t>(d));
  for (std::size_t i = 0; i < view.n; i += stride) {
    const double* x = view.row(i);
    for (int r = 0; r < d; ++r) {
      double sum = 0.0;
      for (int c = 0; c < d; ++c) sum += whitener(r, c) * x[c];
      y[static_cast<std::size_t>(r)] = sum;
    }
    rows.push_back(y);
  }
  return rows;
}

/// Gershgorin-disc lower bound on λ_min, clamped to >= 0 — the valid (if
/// loose) spectral floor when the eigendecomposition diverges.
double GershgorinMinEigenvalueBound(const Matrix& m) {
  double bound = std::numeric_limits<double>::infinity();
  for (int r = 0; r < m.rows(); ++r) {
    double radius = 0.0;
    for (int c = 0; c < m.cols(); ++c) {
      if (c != r) radius += std::abs(m(r, c));
    }
    bound = std::min(bound, m(r, r) - radius);
  }
  return std::max(bound, 0.0);
}

/// Gershgorin-disc upper bound on λ_max.
double GershgorinMaxEigenvalueBound(const Matrix& m) {
  double bound = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    double radius = 0.0;
    for (int c = 0; c < m.cols(); ++c) {
      if (c != r) radius += std::abs(m(r, c));
    }
    bound = std::max(bound, m(r, r) + radius);
  }
  return bound;
}

/// Minimum certified λ_min / λ_max ratio for a full metric. Below it, the
/// exact full-dimension quadratic form — accumulated with error on the
/// order of d·ε·λ_max·||δ||² — can round to <= 0 for a distinct point,
/// and downstream kernels that snap non-positive forms to zero would then
/// sit *below* any positive reduced-distance "lower bound". 1e-12 leaves
/// two orders of magnitude of margin over that rounding floor.
constexpr double kPsdCertifyRatio = 1e-12;

}  // namespace

Projector Projector::Compose(const Matrix& whitener, const FlatView& sample,
                             int k) {
  const int d = whitener.cols();
  k = std::max(1, std::min(k, d));
  if (!sample.empty() && sample.dim == d) {
    Result<Pca> basis = Pca::Fit(WhitenedSample(whitener, sample));
    if (basis.ok()) {
      return Projector(basis.value()
                           .components()
                           .LeadingColumns(k)
                           .Transposed()
                           .Multiply(whitener),
                       true);
    }
  }
  // No usable sample or the basis fit diverged: keep the first k whitened
  // coordinates (rows of the identity basis) — untuned but contractive.
  Matrix p(k, d, 0.0);
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < d; ++c) p(r, c) = whitener(r, c);
  }
  return Projector(std::move(p), true);
}

Projector Projector::FitDiagonal(const Vector& diagonal_a,
                                 const FlatView& sample, int k) {
  const int d = static_cast<int>(diagonal_a.size());
  QCLUSTER_CHECK(d > 0);
  Matrix whitener(d, d, 0.0);
  for (int i = 0; i < d; ++i) {
    const double a = diagonal_a[static_cast<std::size_t>(i)];
    QCLUSTER_CHECK(a >= 0.0);
    whitener(i, i) = std::sqrt(a);
  }
  return Compose(whitener, sample, k);
}

Projector Projector::Fit(const Matrix& a, const FlatView& sample, int k) {
  const int d = a.rows();
  QCLUSTER_CHECK(d > 0 && a.cols() == d);
  Result<SymmetricEigen> eigen = EigenSymmetric(a);
  Matrix whitener(d, d, 0.0);
  bool certified = false;
  if (eigen.ok()) {
    const SymmetricEigen& e = eigen.value();
    // Eigenvalues are sorted descending: certify a strictly positive,
    // well-enough-conditioned spectrum (see contractive()). An indefinite
    // metric admits no non-negative lower bound at all.
    const double lambda_max = e.values.empty() ? 0.0 : e.values.front();
    const double lambda_min = e.values.empty() ? 0.0 : e.values.back();
    certified =
        lambda_min > 0.0 && lambda_min >= kPsdCertifyRatio * lambda_max;
    if (certified) {
      // Symmetric square root A^{1/2} = U Λ^{1/2} U'.
      for (int r = 0; r < d; ++r) {
        for (int c = r; c < d; ++c) {
          double sum = 0.0;
          for (int i = 0; i < d; ++i) {
            const double lambda = e.values[static_cast<std::size_t>(i)];
            sum += e.vectors(r, i) * std::sqrt(lambda) * e.vectors(c, i);
          }
          whitener(r, c) = sum;
          whitener(c, r) = sum;
        }
      }
    }
  } else {
    // Spectral-floor fallback: sqrt(λ_lower)·I satisfies
    // λ_lower·||δ||² <= δ'Aδ, so the projector stays contractive — but only
    // worth certifying when the Gershgorin discs themselves prove a
    // strictly positive, well-conditioned spectrum.
    const double lower = GershgorinMinEigenvalueBound(a);
    certified = lower > 0.0 &&
                lower >= kPsdCertifyRatio * GershgorinMaxEigenvalueBound(a);
    if (certified) {
      const double root = std::sqrt(lower);
      for (int i = 0; i < d; ++i) whitener(i, i) = root;
    }
  }
  if (!certified) {
    // The zero map is still formally contractive for a PSD metric, but the
    // flag tells callers not to prune with it at all.
    return Projector(Matrix(std::max(1, std::min(k, d)), d, 0.0), false);
  }
  return Compose(whitener, sample, k);
}

void Projector::Project(const double* x, double* out) const {
  const int d = p_.cols();
  for (int r = 0; r < p_.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < d; ++c) sum += p_(r, c) * x[c];
    out[static_cast<std::size_t>(r)] = sum;
  }
}

Vector Projector::Project(const Vector& x) const {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == input_dim());
  Vector out(static_cast<std::size_t>(output_dim()));
  Project(x.data(), out.data());
  return out;
}

}  // namespace qcluster::linalg
