#ifndef QCLUSTER_LINALG_DECOMPOSITION_H_
#define QCLUSTER_LINALG_DECOMPOSITION_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace qcluster::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive definite matrix:
/// A = L * L^T.
struct CholeskyFactor {
  Matrix l;

  /// Solves L L^T x = b.
  Vector Solve(const Vector& b) const;

  /// Returns the log-determinant of A, 2 * sum(log L_ii).
  double LogDeterminant() const;
};

/// Computes the Cholesky factorization of a symmetric positive definite
/// matrix. Fails with kSingularMatrix when the matrix is not (numerically)
/// positive definite.
Result<CholeskyFactor> Cholesky(const Matrix& a);

/// LU factorization with partial pivoting: P A = L U packed in one matrix.
struct LuFactor {
  Matrix lu;             ///< L (unit diagonal, below) and U (on/above).
  std::vector<int> piv;  ///< Row permutation.
  int sign = 1;          ///< Permutation sign, for the determinant.

  /// Solves A x = b using the factorization.
  Vector Solve(const Vector& b) const;

  /// Returns det(A).
  double Determinant() const;
};

/// Computes an LU factorization of a square matrix. Fails with
/// kSingularMatrix when a pivot underflows.
Result<LuFactor> Lu(const Matrix& a);

/// Returns the inverse of a square matrix, or kSingularMatrix.
Result<Matrix> Inverse(const Matrix& a);

/// Returns the inverse of a symmetric positive definite matrix via Cholesky,
/// or kSingularMatrix when the matrix is not numerically positive definite
/// (including rank-deficient PSD matrices whose pivots are rounding residue —
/// no LU fallback, which would return a garbage indefinite inverse).
Result<Matrix> InverseSpd(const Matrix& a);

/// Returns the determinant of a square matrix (0 for singular input).
double Determinant(const Matrix& a);

/// Solves A x = b for square A, or kSingularMatrix.
Result<Vector> Solve(const Matrix& a, const Vector& b);

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_DECOMPOSITION_H_
