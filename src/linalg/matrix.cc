#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace qcluster::linalg {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            fill) {
  QCLUSTER_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_) *
                static_cast<std::size_t>(cols_));
  for (const auto& row : rows) {
    QCLUSTER_CHECK_MSG(static_cast<int>(row.size()) == cols_,
                       "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  const int n = static_cast<int>(diag.size());
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = diag[static_cast<std::size_t>(i)];
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  const int cols = static_cast<int>(rows.front().size());
  Matrix m(static_cast<int>(rows.size()), cols);
  for (int r = 0; r < m.rows(); ++r) {
    m.SetRow(r, rows[static_cast<std::size_t>(r)]);
  }
  return m;
}

Vector Matrix::Row(int r) const {
  QCLUSTER_CHECK(0 <= r && r < rows_);
  Vector out(static_cast<std::size_t>(cols_));
  for (int c = 0; c < cols_; ++c) out[static_cast<std::size_t>(c)] = (*this)(r, c);
  return out;
}

Vector Matrix::Col(int c) const {
  QCLUSTER_CHECK(0 <= c && c < cols_);
  Vector out(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) out[static_cast<std::size_t>(r)] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(int r, const Vector& values) {
  QCLUSTER_CHECK(0 <= r && r < rows_);
  QCLUSTER_CHECK(static_cast<int>(values.size()) == cols_);
  for (int c = 0; c < cols_; ++c) (*this)(r, c) = values[static_cast<std::size_t>(c)];
}

Vector Matrix::Diag() const {
  const int n = rows_ < cols_ ? rows_ : cols_;
  Vector out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = (*this)(i, i);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  QCLUSTER_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (int c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::MatVec(const Vector& x) const {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == cols_);
  Vector out(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[static_cast<std::size_t>(c)];
    out[static_cast<std::size_t>(r)] = sum;
  }
  return out;
}

Vector Matrix::TransposedMatVec(const Vector& x) const {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == rows_);
  Vector out(static_cast<std::size_t>(cols_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    for (int c = 0; c < cols_; ++c) out[static_cast<std::size_t>(c)] += (*this)(r, c) * xr;
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  QCLUSTER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  QCLUSTER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::AddToDiagonal(double value) {
  QCLUSTER_CHECK(rows_ == cols_);
  for (int i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

double Matrix::SquaredFrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return sum;
}

double Matrix::Trace() const {
  QCLUSTER_CHECK(rows_ == cols_);
  double sum = 0.0;
  for (int i = 0; i < rows_; ++i) sum += (*this)(i, i);
  return sum;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

Matrix Matrix::LeadingColumns(int k) const {
  QCLUSTER_CHECK(0 <= k && k <= cols_);
  Matrix out(rows_, k);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < k; ++c) out(r, c) = (*this)(r, c);
  }
  return out;
}

std::string Matrix::ToString() const {
  std::string out;
  char buf[64];
  for (int r = 0; r < rows_; ++r) {
    out += "[ ";
    for (int c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%11.5g ", (*this)(r, c));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

Matrix OuterProduct(const Vector& a, const Vector& b) {
  Matrix out(static_cast<int>(a.size()), static_cast<int>(b.size()));
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out(r, c) = a[static_cast<std::size_t>(r)] * b[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

double QuadraticForm(const Vector& x, const Matrix& m, const Vector& y) {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == m.rows());
  QCLUSTER_CHECK(static_cast<int>(y.size()) == m.cols());
  double sum = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    const double xr = x[static_cast<std::size_t>(r)];
    if (xr == 0.0) continue;
    double inner = 0.0;
    for (int c = 0; c < m.cols(); ++c) inner += m(r, c) * y[static_cast<std::size_t>(c)];
    sum += xr * inner;
  }
  return sum;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - b(r, c)) > tol) return false;
    }
  }
  return true;
}

}  // namespace qcluster::linalg
