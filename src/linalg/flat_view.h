#ifndef QCLUSTER_LINALG_FLAT_VIEW_H_
#define QCLUSTER_LINALG_FLAT_VIEW_H_

#include <cstddef>
#include <new>

#include "linalg/vector.h"

namespace qcluster::linalg {

/// Minimal std::allocator drop-in that over-aligns every allocation to
/// `Alignment` bytes. FlatBlock uses it so a block's base pointer starts on
/// a cache line, which keeps the batched kernels' strided row reads from
/// straddling an extra line on row 0. The SIMD kernels still issue
/// unaligned loads — rows of arbitrary `dim` land off-alignment no matter
/// what — so alignment here is a throughput hint, never a correctness
/// requirement.
template <class T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two covering alignof(T)");

  AlignedAllocator() = default;
  template <class U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Cache-line-aligned contiguous double storage: the backing buffer type for
/// FlatBlock and for producers that pack rows in place before FromRaw.
using AlignedBuffer = std::vector<double, AlignedAllocator<double, 64>>;

/// A non-owning view of `n` points of dimension `dim` stored contiguously in
/// row-major order — the structure-of-arrays layout the batched distance
/// kernels scan. Rows are adjacent in memory, so a full scan is one linear
/// sweep instead of n pointer chases through std::vector headers.
struct FlatView {
  const double* data = nullptr;
  std::size_t n = 0;
  int dim = 0;

  const double* row(std::size_t i) const {
    return data + i * static_cast<std::size_t>(dim);
  }
  bool empty() const { return n == 0; }

  /// The sub-view of rows [begin, end).
  FlatView Slice(std::size_t begin, std::size_t end) const {
    return FlatView{row(begin), end - begin, dim};
  }
};

/// An owning contiguous feature block. Packs pointer-chased
/// `std::vector<Vector>` storage into one flat allocation once, so every
/// subsequent scan runs over cache-friendly rows. The base pointer is
/// 64-byte aligned (see AlignedAllocator above).
class FlatBlock {
 public:
  FlatBlock() = default;

  /// Copies `points` (all of equal dimension) into one contiguous buffer.
  /// An empty input yields an empty block.
  static FlatBlock FromPoints(const std::vector<Vector>& points) {
    FlatBlock block;
    if (points.empty()) return block;
    block.dim_ = static_cast<int>(points.front().size());
    block.n_ = points.size();
    block.data_.reserve(points.size() * points.front().size());
    for (const Vector& p : points) {
      block.data_.insert(block.data_.end(), p.begin(), p.end());
    }
    return block;
  }

  /// Adopts an already-packed row-major buffer of `n` rows of `dim` doubles
  /// (`data.size() == n * dim`). Lets producers that fill rows in place —
  /// e.g. the filter-and-refine index writing projected points — build a
  /// block without a second copy.
  static FlatBlock FromRaw(AlignedBuffer data, std::size_t n, int dim) {
    FlatBlock block;
    block.data_ = std::move(data);
    block.n_ = n;
    block.dim_ = dim;
    return block;
  }

  /// Non-owning window over the packed rows.
  // qlint: snapshot(valid until the owning block is destroyed or moved)
  FlatView view() const { return FlatView{data_.data(), n_, dim_}; }
  std::size_t size() const { return n_; }
  int dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

 private:
  AlignedBuffer data_;
  std::size_t n_ = 0;
  int dim_ = 0;
};

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_FLAT_VIEW_H_
