#ifndef QCLUSTER_LINALG_FLAT_VIEW_H_
#define QCLUSTER_LINALG_FLAT_VIEW_H_

#include <cstddef>

#include "linalg/vector.h"

namespace qcluster::linalg {

/// A non-owning view of `n` points of dimension `dim` stored contiguously in
/// row-major order — the structure-of-arrays layout the batched distance
/// kernels scan. Rows are adjacent in memory, so a full scan is one linear
/// sweep instead of n pointer chases through std::vector headers.
struct FlatView {
  const double* data = nullptr;
  std::size_t n = 0;
  int dim = 0;

  const double* row(std::size_t i) const {
    return data + i * static_cast<std::size_t>(dim);
  }
  bool empty() const { return n == 0; }

  /// The sub-view of rows [begin, end).
  FlatView Slice(std::size_t begin, std::size_t end) const {
    return FlatView{row(begin), end - begin, dim};
  }
};

/// An owning contiguous feature block. Packs pointer-chased
/// `std::vector<Vector>` storage into one flat allocation once, so every
/// subsequent scan runs over cache-friendly rows.
class FlatBlock {
 public:
  FlatBlock() = default;

  /// Copies `points` (all of equal dimension) into one contiguous buffer.
  /// An empty input yields an empty block.
  static FlatBlock FromPoints(const std::vector<Vector>& points) {
    FlatBlock block;
    if (points.empty()) return block;
    block.dim_ = static_cast<int>(points.front().size());
    block.n_ = points.size();
    block.data_.reserve(points.size() * points.front().size());
    for (const Vector& p : points) {
      block.data_.insert(block.data_.end(), p.begin(), p.end());
    }
    return block;
  }

  /// Adopts an already-packed row-major buffer of `n` rows of `dim` doubles
  /// (`data.size() == n * dim`). Lets producers that fill rows in place —
  /// e.g. the filter-and-refine index writing projected points — build a
  /// block without a second copy.
  static FlatBlock FromRaw(std::vector<double> data, std::size_t n, int dim) {
    FlatBlock block;
    block.data_ = std::move(data);
    block.n_ = n;
    block.dim_ = dim;
    return block;
  }

  FlatView view() const { return FlatView{data_.data(), n_, dim_}; }
  std::size_t size() const { return n_; }
  int dim() const { return dim_; }
  bool empty() const { return n_ == 0; }

 private:
  std::vector<double> data_;
  std::size_t n_ = 0;
  int dim_ = 0;
};

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_FLAT_VIEW_H_
