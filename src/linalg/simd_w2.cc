// Width-2 dispatch tier: two rows per batch step on one 128-bit register —
// SSE2 on x86-64 (baseline, no extra compile flags) and NEON on AArch64.
// Lane r carries row r of the pair; each lane performs the canonical row
// kernel's operation sequence, so results match the scalar tier bit for
// bit.

#include "linalg/simd_kernels.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace qcluster::linalg::simd::internal {

#if defined(__SSE2__)

namespace {

struct Sse2Policy {
  static constexpr int kWidth = 2;
  using V = __m128d;
  using M = __m128d;  // all-ones / all-zeros per lane

  static V Zero() { return _mm_setzero_pd(); }

  static V Broadcast(double x) { return _mm_set1_pd(x); }

  static V Gather(const double* const* rows, int i) {
    return _mm_set_pd(rows[1][i], rows[0][i]);
  }

  static V Load(const double* p) { return _mm_loadu_pd(p); }

  static V Add(V a, V b) { return _mm_add_pd(a, b); }

  static V Sub(V a, V b) { return _mm_sub_pd(a, b); }

  static V Mul(V a, V b) { return _mm_mul_pd(a, b); }

  static V Div(V a, V b) { return _mm_div_pd(a, b); }

  static V MaxZero(V v) {
    // v > 0 ? v : +0 per lane: the compare mask ANDs the positive lanes
    // through and zeroes the rest, sending NaN and -0 to +0 exactly like
    // the scalar ternary.
    return _mm_and_pd(_mm_cmpgt_pd(v, _mm_setzero_pd()), v);
  }

  static M FalseMask() { return _mm_setzero_pd(); }

  static M CmpLE(V a, V b) { return _mm_cmple_pd(a, b); }  // NaN -> false

  static M OrMask(M a, M b) { return _mm_or_pd(a, b); }

  static V Select(M m, V yes, V no) {
    return _mm_or_pd(_mm_and_pd(m, yes), _mm_andnot_pd(m, no));
  }

  static void Store(double* out, V v) { _mm_storeu_pd(out, v); }
};

constexpr KernelTable kTable = MakeTable<Sse2Policy>(Tier::kWidth2);

}  // namespace

const KernelTable* Width2Table() { return &kTable; }

#elif defined(__ARM_NEON) || defined(__ARM_NEON__)

namespace {

struct NeonPolicy {
  static constexpr int kWidth = 2;
  using V = float64x2_t;
  using M = uint64x2_t;

  static V Zero() { return vdupq_n_f64(0.0); }

  static V Broadcast(double x) { return vdupq_n_f64(x); }

  static V Gather(const double* const* rows, int i) {
    return vsetq_lane_f64(rows[1][i], vdupq_n_f64(rows[0][i]), 1);
  }

  static V Load(const double* p) { return vld1q_f64(p); }

  static V Add(V a, V b) { return vaddq_f64(a, b); }

  static V Sub(V a, V b) { return vsubq_f64(a, b); }

  static V Mul(V a, V b) { return vmulq_f64(a, b); }

  static V Div(V a, V b) { return vdivq_f64(a, b); }

  static V MaxZero(V v) {
    // Select-on-greater rather than vmaxq: NEON's max propagates NaN where
    // the canonical semantics (and x86) send it to +0.
    const float64x2_t zero = vdupq_n_f64(0.0);
    return vbslq_f64(vcgtq_f64(v, zero), v, zero);
  }

  static M FalseMask() { return vdupq_n_u64(0); }

  static M CmpLE(V a, V b) { return vcleq_f64(a, b); }  // NaN -> false

  static M OrMask(M a, M b) { return vorrq_u64(a, b); }

  static V Select(M m, V yes, V no) { return vbslq_f64(m, yes, no); }

  static void Store(double* out, V v) { vst1q_f64(out, v); }
};

constexpr KernelTable kTable = MakeTable<NeonPolicy>(Tier::kWidth2);

}  // namespace

const KernelTable* Width2Table() { return &kTable; }

#else

const KernelTable* Width2Table() { return nullptr; }

#endif

}  // namespace qcluster::linalg::simd::internal
