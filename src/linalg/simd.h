#ifndef QCLUSTER_LINALG_SIMD_H_
#define QCLUSTER_LINALG_SIMD_H_

#include <cstddef>

namespace qcluster::linalg::simd {

/// Maximum number of rows a batch kernel scores per step (the widest
/// tier's lane count). The vector axis is the *batch* dimension: lane r of
/// a step carries row r, and the element loop walks the dimension
/// sequentially, so each lane performs exactly the scalar row kernel's
/// operation sequence in the same order. A narrower tier carries fewer
/// rows per step but the per-row arithmetic is unchanged, which is why
/// every tier — and the per-point row kernels — produce byte-identical
/// results for the same inputs at any dimension and any thread count.
/// Leftover rows (n % width) run the row kernel itself. New kernels must
/// follow the same rule: per-row arithmetic order is the scalar order,
/// independent of tier (docs/PERFORMANCE.md).
inline constexpr int kLanes = 4;

/// Dispatch tiers in increasing preference order. kWidth2 is SSE2 on x86
/// and NEON on AArch64 (both are baseline for their architecture); kWidth4
/// is AVX2, compiled into its own translation unit and selected only when
/// the running CPU reports support, so one binary serves any host.
enum class Tier : int {
  kScalar = 0,
  kWidth2 = 1,
  kWidth4 = 2,
};

/// One quadratic component of a harmonic (Eq. 5) aggregate, viewed as raw
/// pointers so kernels stay allocation-free. Exactly one of `diagonal`
/// (diag(Aᵢ), length dim) and `full` (row-major dim×dim Aᵢ) is non-null;
/// for the reduced-space filter pass both are null and the component is
/// plain Euclidean against `query`.
struct QuadComponentView {
  const double* query = nullptr;
  const double* diagonal = nullptr;
  const double* full = nullptr;
  double weight = 1.0;
};

/// The Eq. 5 aggregate Σmᵢ / Σ(mᵢ/d²ᵢ) over `count` components. All
/// pointers are borrowed; the caller keeps them alive across the call.
struct HarmonicSpec {
  const QuadComponentView* components = nullptr;
  std::size_t count = 0;
  double total_weight = 0.0;
};

/// The per-tier kernel set. Row kernels score one point in canonical
/// sequential order and are shared verbatim by every tier; batch kernels
/// score `n` contiguous row-major rows (row stride == the dimension) with
/// the tier's row width, each lane mirroring the row kernel's exact
/// operation sequence — so the same inputs produce byte-identical outputs
/// on every tier and through either entry point.
struct KernelTable {
  Tier tier;

  /// Σ (q[i] − x[i])².
  double (*squared_l2_row)(const double* q, const double* x, int d);
  /// Σ (w[i]·(x[i] − q[i]))·(x[i] − q[i]) — the weighted/diagonal form.
  double (*weighted_sq_row)(const double* w, const double* q, const double* x,
                            int d);
  /// Σ a[i]·b[i].
  double (*dot_row)(const double* a, const double* b, int d);
  /// vᵀ A v for a row-major d×d matrix: Σ_r v[r]·dot(A_r, v), outer sum and
  /// inner dots both sequential.
  double (*quadratic_form_row)(const double* a, const double* v, int d);
  /// xᵀAx − 2·xᵀ(Aq) + qᵀAq, clamped at 0 (the cached expanded Mahalanobis
  /// form): xᵀAx as in quadratic_form_row, xᵀ(Aq) one sequential dot.
  double (*mahalanobis_row)(const double* a, const double* aq, double q_aq,
                            const double* x, int d);
  /// Eq. 5 over full-dimension components. `scratch` must hold d doubles
  /// when any component carries a `full` matrix (diff staging); may be null
  /// otherwise.
  double (*harmonic_row)(const HarmonicSpec& spec, const double* x, int d,
                         double* scratch);
  /// Eq. 5 over a packed reduced row [z₀ | z₁ | ...] of `count` segments of
  /// `reduced` doubles each: d²ⱼ = ‖qⱼ − zⱼ‖² per segment (the
  /// filter-and-refine lower-bound pass).
  double (*harmonic_segments_row)(const HarmonicSpec& spec, const double* row,
                                  int reduced);
  /// Σ wᵢ·clampᵢ² where clampᵢ is q's axis distance to [lo, hi] (0 inside);
  /// `w == nullptr` means unit weights. Requires lo[i] <= hi[i] (or the
  /// ±inf empty rectangle). The per-element clamp is `t > 0 ? t : +0`, so
  /// NaN coordinates contribute 0 exactly like the scalar branch form.
  double (*weighted_rect_row)(const double* w, const double* q,
                              const double* lo, const double* hi, int d);

  void (*squared_l2_batch)(const double* q, const double* base, std::size_t n,
                           int d, double* out);
  void (*weighted_sq_batch)(const double* w, const double* q,
                            const double* base, std::size_t n, int d,
                            double* out);
  void (*mahalanobis_batch)(const double* a, const double* aq, double q_aq,
                            const double* base, std::size_t n, int d,
                            double* out);
  void (*harmonic_batch)(const HarmonicSpec& spec, const double* base,
                         std::size_t n, int d, double* scratch, double* out);
  void (*harmonic_segments_batch)(const HarmonicSpec& spec, const double* base,
                                  std::size_t n, int reduced, double* out);
};

/// The active kernel table: resolved once (honoring QCLUSTER_SIMD, falling
/// back to the best tier the CPU supports), then one relaxed atomic load
/// per call. Safe to call from any thread.
const KernelTable& Kernels();

/// Tier of the table Kernels() currently returns.
Tier ActiveTier();

/// True when `tier` is both compiled in and supported by the running CPU.
bool TierAvailable(Tier tier);

/// Forces the active tier (tests, benches). Returns false — leaving the
/// active tier unchanged — when the tier is unavailable on this host. Also
/// refreshes the `simd.dispatch_tier` gauge.
bool SetTier(Tier tier);

/// Re-applies the QCLUSTER_SIMD preference (auto when unset): the inverse
/// of SetTier for tests that must restore the dispatch default.
void ResetTierFromEnv();

/// Stable lowercase tier name for logs/metrics: "scalar", "sse2"/"neon"
/// (architecture-dependent), "avx2".
const char* TierName(Tier tier);

namespace internal {

/// Parses QCLUSTER_SIMD (scalar|sse2|neon|avx2|auto) once; idempotent.
/// Referenced from the inline variable below so the initializer survives
/// static-library linking in every binary that includes this header.
bool InitSimdFromEnv();
inline const bool kSimdEnvApplied = InitSimdFromEnv();

/// Per-tier tables, defined in their own translation units (only
/// simd_avx2.cc is compiled with AVX2 codegen). Null when the tier is not
/// compiled for this architecture.
const KernelTable* ScalarTable();
const KernelTable* Width2Table();
const KernelTable* Width4Table();

}  // namespace internal

}  // namespace qcluster::linalg::simd

#endif  // QCLUSTER_LINALG_SIMD_H_
