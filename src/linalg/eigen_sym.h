#ifndef QCLUSTER_LINALG_EIGEN_SYM_H_
#define QCLUSTER_LINALG_EIGEN_SYM_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace qcluster::linalg {

/// Eigendecomposition of a symmetric matrix: A = V diag(values) V^T.
/// Eigenvalues are sorted in descending order; eigenvectors are the
/// corresponding *columns* of `vectors` (matching the paper's Γ / G whose
/// column γ_i is the i-th principal direction).
struct SymmetricEigen {
  Vector values;
  Matrix vectors;
};

/// Computes all eigenvalues/eigenvectors of a symmetric matrix with the
/// cyclic Jacobi rotation method. Exact for the small (p <= a few dozen)
/// covariance matrices this library handles; fails with kNotConverged only
/// if the off-diagonal mass does not vanish within the sweep limit.
Result<SymmetricEigen> EigenSymmetric(const Matrix& a,
                                      int max_sweeps = 64,
                                      double tol = 1e-12);

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_EIGEN_SYM_H_
