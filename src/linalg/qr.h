#ifndef QCLUSTER_LINALG_QR_H_
#define QCLUSTER_LINALG_QR_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace qcluster::linalg {

/// Householder QR factorization of an m x n matrix (m >= n): A = Q R with
/// Q m x n orthonormal columns ("thin" Q) and R n x n upper triangular.
struct QrFactor {
  Matrix q;  ///< m x n, orthonormal columns.
  Matrix r;  ///< n x n, upper triangular.

  /// Solves the least-squares problem min ||A x − b||₂ via R x = Qᵀ b.
  Vector SolveLeastSquares(const Vector& b) const;
};

/// Computes the thin QR factorization. Fails with kSingularMatrix when a
/// column is (numerically) linearly dependent on the previous ones, i.e.
/// rank(A) < n.
Result<QrFactor> Qr(const Matrix& a);

/// Convenience: least-squares solution of an overdetermined system, or
/// kSingularMatrix for rank-deficient A.
Result<Vector> LeastSquares(const Matrix& a, const Vector& b);

}  // namespace qcluster::linalg

#endif  // QCLUSTER_LINALG_QR_H_
