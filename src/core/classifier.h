#ifndef QCLUSTER_CORE_CLASSIFIER_H_
#define QCLUSTER_CORE_CLASSIFIER_H_

#include <vector>

#include "core/cluster.h"
#include "stats/covariance_scheme.h"

namespace qcluster::core {

/// Parameters of the adaptive Bayesian classification stage (Sec. 4.2).
struct ClassifierOptions {
  /// Significance level α of the effective radius χ²_p(α) (Lemma 1). The
  /// paper's typical setting keeps 95-99% of a cluster's mass inside, i.e.
  /// α in [0.01, 0.05].
  double alpha = 0.05;
  /// Covariance handling for S_pooled^{-1} and the radius test.
  stats::CovarianceScheme scheme = stats::CovarianceScheme::kDiagonal;
  /// Variance floor applied to per-cluster covariances so singleton and
  /// degenerate clusters keep a finite metric.
  double min_variance = 1e-4;
  /// When true, uses each cluster's own covariance in the discriminant —
  /// the full quadratic form of the paper's "important special case" of
  /// Eq. 8, d̂ᵢ(x) = −½ln|Sᵢ| − ½(x−x̄ᵢ)'Sᵢ⁻¹(x−x̄ᵢ) + ln wᵢ (QDA). When
  /// false (default), the paper's pooled simplification of Eq. 10 (LDA).
  bool use_individual_covariances = false;
};

/// The Bayesian classification function d̂_i(x) of Eq. 10 evaluated for
/// every cluster:
///   d̂_i(x) = −½ (x − x̄_i)' S_pooled^{-1} (x − x̄_i) + ln w_i
/// with S_pooled from Eq. 7 and w_i = m_i / Σ m the normalized cluster
/// weights. Larger is better (maximum posterior).
std::vector<double> ClassificationScores(const std::vector<Cluster>& clusters,
                                         const linalg::Vector& x,
                                         const ClassifierOptions& options);

/// Decision of Algorithm 2 for a single point.
struct ClassificationDecision {
  int cluster = -1;         ///< Chosen cluster, or -1 to start a new one.
  double score = 0.0;       ///< Winning d̂ value.
  double radius_d2 = 0.0;   ///< (x − x̄_k)' S_k^{-1} (x − x̄_k) of the winner.
  double radius = 0.0;      ///< Effective radius χ²_p(α).
};

/// Algorithm 2: picks the cluster maximizing d̂, then accepts the point only
/// if it lies within the winner's effective radius (Eq. 6 with the cluster's
/// own inverse covariance); otherwise the point must found a new cluster.
/// Requires a non-empty cluster list.
ClassificationDecision Classify(const std::vector<Cluster>& clusters,
                                const linalg::Vector& x,
                                const ClassifierOptions& options);

/// Runs Algorithm 2 over a batch of scored points, mutating `clusters`:
/// each point is appended to its chosen cluster or appended as a new
/// singleton cluster. Starts a first cluster when `clusters` is empty.
/// Returns the per-point decisions.
std::vector<ClassificationDecision> ClassifyBatch(
    std::vector<Cluster>& clusters, const std::vector<linalg::Vector>& points,
    const std::vector<double>& scores, const ClassifierOptions& options);

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_CLASSIFIER_H_
