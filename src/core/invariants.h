#ifndef QCLUSTER_CORE_INVARIANTS_H_
#define QCLUSTER_CORE_INVARIANTS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/knn.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"
#include "stats/weighted_stats.h"

/// Runtime validators for the algebraic invariants the paper states and the
/// engine's correctness rests on. Each returns Status::OK when the invariant
/// holds (within a numerical tolerance) and a FailedPrecondition naming the
/// violated equation otherwise. They are wired into the hot paths behind
/// QCLUSTER_AUDIT (see common/check.h): never evaluated in Release builds,
/// and only evaluated in Debug when auditing is switched on — several cost
/// O(d³), far more than the operation they certify.
///
/// Validators callable from the stats/ and index/ layers are defined inline
/// here (those libraries sit below qcluster_core in the link order);
/// validators used only by core/ translation units live in invariants.cc.
namespace qcluster::core {

/// Relative tolerances for the audits. The validators certify algebra that
/// holds exactly in real arithmetic; the slack only absorbs floating-point
/// accumulation (a few hundred ulps on the d- and n-term reductions), so
/// genuine sign or closure errors exceed it by many orders of magnitude.
inline constexpr double kAuditSymmetryTol = 1e-9;
inline constexpr double kAuditPsdTol = 1e-7;
inline constexpr double kAuditClosureTol = 1e-8;
inline constexpr double kAuditBoundTol = 1e-9;

/// Eq. 7 / Eq. 10: every covariance (and pooled covariance, Eq. 15) entering
/// classification — and its inverse — must be symmetric and positive
/// semi-definite, or the quadratic forms d²(x, c) lose their distance
/// semantics. Symmetry is checked entry-wise relative to the largest
/// magnitude; PSD via the spectrum (λ_min >= −kAuditPsdTol · scale). A
/// diverging eigensolver certifies nothing and is not reported as a
/// violation. `what` names the matrix in the report.
inline Status ValidateSymmetricPsd(const linalg::Matrix& m, const char* what) {
  if (m.rows() != m.cols()) {
    return Status::FailedPrecondition(
        std::string(what) + ": non-square matrix violates Eq. 7/10");
  }
  double max_abs = 0.0;
  double max_asym = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      max_abs = std::max(max_abs, std::abs(m(r, c)));
      if (c > r) max_asym = std::max(max_asym, std::abs(m(r, c) - m(c, r)));
    }
  }
  if (!std::isfinite(max_abs)) {
    return Status::FailedPrecondition(
        std::string(what) + ": non-finite entries violate Eq. 7/10");
  }
  if (max_asym > kAuditSymmetryTol * std::max(max_abs, 1e-300)) {
    return Status::FailedPrecondition(
        std::string(what) + ": asymmetry " + std::to_string(max_asym) +
        " violates Eq. 7/10 symmetry");
  }
  const Result<linalg::SymmetricEigen> eigen = linalg::EigenSymmetric(m);
  if (!eigen.ok() || eigen.value().values.empty()) return Status::OK();
  const double lambda_max = eigen.value().values.front();
  const double lambda_min = eigen.value().values.back();
  const double scale = std::max({std::abs(lambda_max), std::abs(lambda_min),
                                 1e-300});
  if (lambda_min < -kAuditPsdTol * scale) {
    return Status::FailedPrecondition(
        std::string(what) + ": lambda_min " + std::to_string(lambda_min) +
        " < 0 violates Eq. 7/10 positive semi-definiteness");
  }
  return Status::OK();
}

/// Eq. 14: T² = (m_i·m_j)/(m_i+m_j) · (c_i−c_j)' S⁻¹ (c_i−c_j) is a scaled
/// quadratic form under a PSD pooled inverse, so it must be finite and
/// non-negative, and the weight total must be positive for the scaling to
/// be defined (Eq. 16 dof).
inline Status ValidateHotellingT2(double t2, double m_total) {
  if (!(m_total > 0.0)) {
    return Status::FailedPrecondition(
        "Hotelling total weight " + std::to_string(m_total) +
        " <= 0 violates Eq. 14/16");
  }
  if (!std::isfinite(t2) || t2 < -kAuditPsdTol * std::max(1.0, m_total)) {
    return Status::FailedPrecondition(
        "Hotelling T² " + std::to_string(t2) +
        " negative or non-finite violates Eq. 14");
  }
  return Status::OK();
}

/// Theorem 1 / Eq. 17–19: the PCA-reduced distance is a lower bound on the
/// exact quadratic-form distance — dropping coordinates of an orthonormal
/// rotation of the whitened difference can only shrink the norm. Audited on
/// sampled (point, query) pairs where both values are already computed.
inline Status ValidateContractiveBound(double reduced, double exact,
                                       const char* what) {
  if (!(reduced >= 0.0)) {
    return Status::FailedPrecondition(
        std::string(what) + ": reduced distance " + std::to_string(reduced) +
        " < 0 violates Theorem 1/Eq. 17");
  }
  if (!std::isfinite(exact)) return Status::OK();  // Nothing to bound.
  if (reduced * (1.0 - kAuditBoundTol) >
      exact + kAuditBoundTol * std::max(1.0, exact)) {
    return Status::FailedPrecondition(
        std::string(what) + ": reduced " + std::to_string(reduced) +
        " exceeds exact " + std::to_string(exact) +
        ", violates Theorem 1/Eq. 17-19 contractiveness");
  }
  return Status::OK();
}

/// Sharded top-k contract: every merged result list is strictly ascending
/// under the (distance, id) order the indexes promise — equal distances
/// break ties by id, and no id appears twice. A violation means a shard
/// heap or the merge lost the deterministic tie-break.
inline Status ValidateSortedNeighbors(const std::vector<index::Neighbor>& v,
                                      const char* what) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    const index::Neighbor& prev = v[i - 1];
    const index::Neighbor& cur = v[i];
    const bool ordered = prev.distance < cur.distance ||
                         (prev.distance == cur.distance && prev.id < cur.id);
    if (!ordered) {
      return Status::FailedPrecondition(
          std::string(what) + ": neighbors out of (distance, id) order at " +
          std::to_string(i) + " — top-k heap/merge tie-break violated");
    }
  }
  return Status::OK();
}

/// Eq. 11–13 closure: the merged summary must carry exactly the combined
/// weight (Eq. 11), the weight-proportional mean (Eq. 12), and the scatter
/// identity S = S_i + S_j + (m_i m_j / m) (x̄_i − x̄_j)(x̄_i − x̄_j)'
/// (Eq. 13) — recomputed here independently of WeightedStats::Merged.
Status ValidateMergeClosure(const stats::WeightedStats& a,
                            const stats::WeightedStats& b,
                            const stats::WeightedStats& merged);

/// Eq. 5: the disjunctive aggregate is a weighted harmonic-style mean of
/// non-negative per-cluster distances, so it must be non-negative, zero iff
/// some per-cluster distance is zero, and bounded by the extreme d²ᵢ —
/// monotone non-negative aggregation.
Status ValidateDisjunctiveAggregate(const double* d2, const double* weights,
                                    std::size_t n, double total_weight,
                                    double result);

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_INVARIANTS_H_
