#ifndef QCLUSTER_CORE_QUALITY_H_
#define QCLUSTER_CORE_QUALITY_H_

#include <vector>

#include "core/classifier.h"
#include "core/cluster.h"

namespace qcluster::core {

/// Result of the clustering-quality measurement of Sec. 4.5.
struct LeaveOneOutReport {
  int total = 0;    ///< N: points across all clusters.
  int correct = 0;  ///< C: points re-classified into their own cluster.

  /// The paper's error rate 1 − C/N (0 when there are no points).
  double error_rate() const {
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(correct) /
                                  static_cast<double>(total);
  }
};

/// Sec. 4.5 leave-one-out quality: every point is removed from its cluster,
/// the Bayesian classification function (Eq. 10) is re-evaluated against
/// the updated cluster set, and the point counts as correct when the argmax
/// lands back on its own cluster. Points whose removal empties their
/// cluster are counted as misclassified (their cluster cannot win).
LeaveOneOutReport LeaveOneOutError(const std::vector<Cluster>& clusters,
                                   const ClassifierOptions& options);

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_QUALITY_H_
