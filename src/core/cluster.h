#ifndef QCLUSTER_CORE_CLUSTER_H_
#define QCLUSTER_CORE_CLUSTER_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/covariance_scheme.h"
#include "stats/weighted_stats.h"

namespace qcluster::core {

/// A query cluster: a weighted set of relevant images summarized by the
/// statistics of Table 1 (centroid x̄_i, scatter/covariance S_i, point count
/// n_i, relevance-score weight m_i).
///
/// The raw member points are retained for evaluation (the leave-one-out
/// quality measure of Sec. 4.5) and debugging; all retrieval-path algorithms
/// consume only the summary statistics, which is what makes the adaptive
/// scheme cheap (no re-clustering, Sec. 4).
class Cluster {
 public:
  /// Creates an empty cluster of dimension `dim`.
  explicit Cluster(int dim);

  /// Creates a singleton cluster holding `x` with relevance score `score`.
  [[nodiscard]] static Cluster FromPoint(const linalg::Vector& x,
                                         double score);

  /// Merges two clusters using only their summaries (Eq. 11-13). Point lists
  /// are concatenated for bookkeeping.
  [[nodiscard]] static Cluster Merged(const Cluster& a, const Cluster& b);

  /// Adds a point with relevance score `score > 0`.
  void Add(const linalg::Vector& x, double score);

  int dim() const { return stats_.dim(); }
  /// Number of member points n_i.
  int size() const { return stats_.n(); }
  /// Sum of relevance scores m_i.
  double weight() const { return stats_.weight(); }
  /// Weighted centroid x̄_i (Eq. 2).
  const linalg::Vector& centroid() const { return stats_.mean(); }
  /// Full summary statistics.
  const stats::WeightedStats& stats() const { return stats_; }

  /// Weighted covariance S_i (Eq. 3 normalized by m_i − 1).
  linalg::Matrix Covariance() const { return stats_.Covariance(); }

  /// S_i^{-1} under `scheme`, with every diagonal entry of S_i floored at
  /// `min_variance` first so that singleton or degenerate clusters still
  /// yield a finite metric. Cached per scheme until the cluster changes.
  const linalg::Matrix& InverseCovariance(stats::CovarianceScheme scheme,
                                          double min_variance) const;

  /// Squared cluster distance d²(x, x̄_i) = (x − x̄_i)' S_i^{-1} (x − x̄_i)
  /// (Eq. 1) under `scheme`.
  double DistanceSquared(const linalg::Vector& x,
                         stats::CovarianceScheme scheme,
                         double min_variance) const;

  /// Member points (parallel to `scores()`).
  const std::vector<linalg::Vector>& points() const { return points_; }
  const std::vector<double>& scores() const { return scores_; }

 private:
  void InvalidateCache();
  linalg::Matrix FlooredCovariance(double min_variance) const;

  stats::WeightedStats stats_;
  std::vector<linalg::Vector> points_;
  std::vector<double> scores_;

  // Lazily computed inverse covariance, one slot per scheme.
  mutable std::optional<linalg::Matrix> inverse_cache_[2];
  mutable double cached_min_variance_[2] = {-1.0, -1.0};
};

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_CLUSTER_H_
