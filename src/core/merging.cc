#include "core/merging.h"

#include <limits>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "stats/box_m.h"
#include "stats/distributions.h"
#include "stats/hotelling.h"

namespace qcluster::core {

using linalg::Matrix;
using linalg::Vector;

MergeCandidate EvaluateMergePair(const std::vector<Cluster>& clusters, int i,
                                 int j, double alpha,
                                 const MergeOptions& options) {
  QCLUSTER_CHECK(0 <= i && i < static_cast<int>(clusters.size()));
  QCLUSTER_CHECK(0 <= j && j < static_cast<int>(clusters.size()));
  QCLUSTER_CHECK(i != j);
  const Cluster& a = clusters[static_cast<std::size_t>(i)];
  const Cluster& b = clusters[static_cast<std::size_t>(j)];
  const int dim = a.dim();

  // Pooled covariance of the pair (Eq. 15) with the variance floor, then T²
  // under the configured scheme.
  Matrix pooled = stats::PooledCovariancePair(a.stats(), b.stats());
  for (int d = 0; d < dim; ++d) {
    if (pooled(d, d) < options.min_variance) {
      pooled(d, d) = options.min_variance;
    }
  }
  const Matrix pooled_inverse = stats::InvertCovariance(pooled, options.scheme);

  MergeCandidate candidate;
  candidate.i = i;
  candidate.j = j;
  candidate.t2 =
      stats::HotellingT2WithInverse(a.stats(), b.stats(), pooled_inverse);
  Result<double> c2 = stats::HotellingCriticalDistance(
      a.weight() + b.weight(), dim, alpha);
  candidate.c2 = c2.ok()
                     ? c2.value()
                     // Degenerate dof: fall back to the asymptotic χ² bound.
                     : stats::ChiSquaredUpperQuantile(alpha,
                                                      static_cast<double>(dim));
  if (options.check_covariance_homogeneity) {
    Result<stats::BoxMTest> box = stats::BoxMHomogeneityTest(
        {&a.stats(), &b.stats()}, options.homogeneity_alpha);
    // Clusters too small for the test are treated as compatible, matching
    // the paper's small-sample assumption.
    if (box.ok() && box.value().reject) candidate.heterogeneous = true;
  }
  return candidate;
}

namespace {

/// Returns the candidate with the smallest T² among all pairs.
MergeCandidate BestPair(const std::vector<Cluster>& clusters, double alpha,
                        const MergeOptions& options) {
  MergeCandidate best;
  best.t2 = std::numeric_limits<double>::infinity();
  best.c2 = -std::numeric_limits<double>::infinity();
  const int g = static_cast<int>(clusters.size());
  for (int i = 0; i < g; ++i) {
    for (int j = i + 1; j < g; ++j) {
      const MergeCandidate c =
          EvaluateMergePair(clusters, i, j, alpha, options);
      if (c.t2 < best.t2) best = c;
    }
  }
  return best;
}

void ApplyMerge(std::vector<Cluster>& clusters, int i, int j) {
  QCLUSTER_CHECK(i < j);
  clusters[static_cast<std::size_t>(i)] =
      Cluster::Merged(clusters[static_cast<std::size_t>(i)],
                      clusters[static_cast<std::size_t>(j)]);
  clusters.erase(clusters.begin() + j);
}

}  // namespace

MergeReport MergeClusters(std::vector<Cluster>& clusters,
                          const MergeOptions& options) {
  QCLUSTER_CHECK(options.max_clusters >= 1);
  QCLUSTER_CHECK(0.0 < options.alpha && options.alpha < 1.0);
  QCLUSTER_CHECK(0.0 < options.alpha_relax && options.alpha_relax < 1.0);
  QCLUSTER_TRACE_SPAN(span, "merge.pass");
  span.AddAttr("clusters_in", clusters.size());
  QCLUSTER_TIMED("merge.pass");

  MergeReport report;
  double alpha = options.alpha;
  report.final_alpha = alpha;

  while (clusters.size() > 1) {
    const MergeCandidate best = BestPair(clusters, alpha, options);
    const bool over_cap =
        static_cast<int>(clusters.size()) > options.max_clusters;
    if (best.mergeable()) {
      ApplyMerge(clusters, best.i, best.j);
      ++report.merges;
      continue;
    }
    if (!over_cap) break;  // Statistically distinct and within the cap.
    // Over the cap with every pair rejecting H0: Algorithm 3 line 8 —
    // increase the critical distance by relaxing α; force the closest pair
    // once α bottoms out.
    if (alpha > options.min_alpha) {
      alpha *= options.alpha_relax;
      if (alpha < options.min_alpha) alpha = options.min_alpha;
      report.final_alpha = alpha;
      continue;
    }
    ApplyMerge(clusters, best.i, best.j);
    ++report.merges;
    ++report.forced_merges;
  }
  MetricAdd("merge.passes");
  MetricAdd("merge.merges", report.merges);
  MetricAdd("merge.forced_merges", report.forced_merges);
  return report;
}

}  // namespace qcluster::core
