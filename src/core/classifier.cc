#include "core/classifier.h"

#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "linalg/decomposition.h"
#include "stats/distributions.h"
#include "stats/weighted_stats.h"

namespace qcluster::core {

using linalg::Matrix;
using linalg::Vector;

namespace {

/// QDA scores: each cluster's own (floored) covariance with the −½ln|Sᵢ|
/// normalization term of Eq. 8's normal-density special case.
std::vector<double> IndividualCovarianceScores(
    const std::vector<Cluster>& clusters, const Vector& x,
    const ClassifierOptions& options, double total_weight) {
  std::vector<double> scores(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    linalg::Matrix cov = clusters[i].Covariance();
    double floored_log_det = 0.0;
    for (int d = 0; d < cov.rows(); ++d) {
      if (cov(d, d) < options.min_variance) cov(d, d) = options.min_variance;
    }
    const double det = linalg::Determinant(cov);
    floored_log_det = std::log(std::max(det, 1e-300));
    const double quad = clusters[i].DistanceSquared(x, options.scheme,
                                                    options.min_variance);
    const double w = clusters[i].weight() / total_weight;
    scores[i] = -0.5 * floored_log_det - 0.5 * quad + std::log(w);
  }
  return scores;
}

}  // namespace

std::vector<double> ClassificationScores(const std::vector<Cluster>& clusters,
                                         const Vector& x,
                                         const ClassifierOptions& options) {
  QCLUSTER_CHECK(!clusters.empty());
  const int dim = clusters.front().dim();
  QCLUSTER_CHECK(static_cast<int>(x.size()) == dim);

  if (options.use_individual_covariances) {
    double total_weight = 0.0;
    for (const Cluster& c : clusters) total_weight += c.weight();
    QCLUSTER_CHECK(total_weight > 0.0);
    return IndividualCovarianceScores(clusters, x, options, total_weight);
  }

  // S_pooled of Eq. 7 across all current clusters, with the same variance
  // floor the per-cluster metrics use.
  std::vector<const stats::WeightedStats*> groups;
  groups.reserve(clusters.size());
  double total_weight = 0.0;
  for (const Cluster& c : clusters) {
    groups.push_back(&c.stats());
    total_weight += c.weight();
  }
  QCLUSTER_CHECK(total_weight > 0.0);
  Matrix pooled = stats::PooledCovariance(groups);
  for (int i = 0; i < pooled.rows(); ++i) {
    if (pooled(i, i) < options.min_variance) {
      pooled(i, i) = options.min_variance;
    }
  }
  const Matrix pooled_inverse =
      stats::InvertCovariance(pooled, options.scheme);

  std::vector<double> scores(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const Vector diff = linalg::Sub(x, clusters[i].centroid());
    const double quad = linalg::QuadraticForm(diff, pooled_inverse, diff);
    const double w = clusters[i].weight() / total_weight;
    scores[i] = -0.5 * quad + std::log(w);  // Eq. 10.
  }
  return scores;
}

ClassificationDecision Classify(const std::vector<Cluster>& clusters,
                                const Vector& x,
                                const ClassifierOptions& options) {
  const std::vector<double> scores =
      ClassificationScores(clusters, x, options);
  int best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }

  ClassificationDecision decision;
  decision.score = scores[static_cast<std::size_t>(best)];
  // Lemma 1 / Algorithm 2 line 4: the winner keeps the point only when it
  // falls inside the effective radius under the cluster's own metric.
  decision.radius = stats::ChiSquaredUpperQuantile(
      options.alpha, static_cast<double>(clusters.front().dim()));
  decision.radius_d2 =
      clusters[static_cast<std::size_t>(best)].DistanceSquared(
          x, options.scheme, options.min_variance);
  decision.cluster = decision.radius_d2 < decision.radius ? best : -1;
  return decision;
}

std::vector<ClassificationDecision> ClassifyBatch(
    std::vector<Cluster>& clusters, const std::vector<Vector>& points,
    const std::vector<double>& scores, const ClassifierOptions& options) {
  QCLUSTER_CHECK(points.size() == scores.size());
  QCLUSTER_TRACE_SPAN(span, "classifier.batch");
  span.AddAttr("points", points.size());
  span.AddAttr("clusters_in", clusters.size());
  QCLUSTER_TIMED("classifier.batch");
  MetricAdd("classifier.points", static_cast<long long>(points.size()));
  std::vector<ClassificationDecision> decisions;
  decisions.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    QCLUSTER_CHECK(scores[i] > 0.0);
    if (clusters.empty()) {
      clusters.push_back(Cluster::FromPoint(points[i], scores[i]));
      MetricAdd("classifier.new_clusters");
      ClassificationDecision d;
      d.cluster = 0;
      decisions.push_back(d);
      continue;
    }
    ClassificationDecision d = Classify(clusters, points[i], options);
    if (d.cluster >= 0) {
      clusters[static_cast<std::size_t>(d.cluster)].Add(points[i], scores[i]);
      MetricAdd("classifier.assigned");
    } else {
      clusters.push_back(Cluster::FromPoint(points[i], scores[i]));
      MetricAdd("classifier.new_clusters");
    }
    decisions.push_back(d);
  }
  return decisions;
}

}  // namespace qcluster::core
