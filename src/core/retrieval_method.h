#ifndef QCLUSTER_CORE_RETRIEVAL_METHOD_H_
#define QCLUSTER_CORE_RETRIEVAL_METHOD_H_

#include <string>
#include <vector>

#include "index/knn.h"
#include "linalg/vector.h"

namespace qcluster::core {

/// An image the user marked as relevant, by database id, with its relevance
/// score (the paper's v_ij; any positive scale).
struct RelevantItem {
  int id = 0;
  double score = 1.0;
};

/// Common protocol of all relevance-feedback retrieval methods compared in
/// Sec. 5 (Qcluster, query point movement, query expansion, FALCON): an
/// initial query-by-example round followed by feedback-refined rounds. The
/// evaluation harness drives every method through this interface.
class RetrievalMethod {
 public:
  virtual ~RetrievalMethod() = default;

  /// Human readable method name ("qcluster", "qpm", ...).
  virtual std::string name() const = 0;

  /// Runs the initial k-NN round around the example `query`, resetting all
  /// feedback state.
  virtual std::vector<index::Neighbor> InitialQuery(
      const linalg::Vector& query) = 0;

  /// Incorporates one round of user judgements and answers the refined
  /// query.
  virtual std::vector<index::Neighbor> Feedback(
      const std::vector<RelevantItem>& marked) = 0;

  /// Clears all feedback state.
  virtual void Reset() = 0;

  /// Cost counters of the most recent retrieval round.
  virtual const index::SearchStats& last_search_stats() const = 0;
};

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_RETRIEVAL_METHOD_H_
