#ifndef QCLUSTER_CORE_SESSION_H_
#define QCLUSTER_CORE_SESSION_H_

#include <optional>
#include <vector>

#include "core/engine.h"

namespace qcluster::core {

/// A recorded feedback round.
struct SessionRound {
  std::vector<RelevantItem> marked;          ///< What the user marked.
  std::vector<index::Neighbor> result;       ///< The refined result.
  std::vector<Cluster> clusters;             ///< Cluster state snapshot.
  index::SearchStats search_stats;           ///< Cost of the round's query.
};

/// A stateful retrieval session over a QclusterEngine: records every round
/// (marks, results, cluster snapshots), supports undoing the most recent
/// feedback — the "oops, unmark that" interaction every interactive CBIR
/// front-end needs — and exposes the full history for inspection.
///
/// Undo restores the engine's cluster state by replaying the marks of the
/// remaining rounds onto a fresh engine; with the library's deterministic
/// algorithms this reproduces the exact pre-feedback state.
class RetrievalSession {
 public:
  /// Wraps an engine configuration over `database`/`knn` (both outlive the
  /// session).
  RetrievalSession(const std::vector<linalg::Vector>* database,
                   const index::KnnIndex* knn, const QclusterOptions& options);

  /// Starts (or restarts) the session at the example image.
  std::vector<index::Neighbor> Start(const linalg::Vector& query);

  /// One feedback round; recorded in the history.
  std::vector<index::Neighbor> Feedback(
      const std::vector<RelevantItem>& marked);

  /// Undoes the most recent feedback round, restoring results and cluster
  /// state to the previous round. Returns false when there is nothing to
  /// undo (no feedback yet).
  bool Undo();

  /// The current result set (initial or latest refined).
  const std::vector<index::Neighbor>& current_result() const {
    return current_result_;
  }

  /// Completed feedback rounds, oldest first.
  const std::vector<SessionRound>& history() const { return history_; }

  /// Current cluster state (empty before the first feedback).
  const std::vector<Cluster>& clusters() const { return engine_.clusters(); }

  /// Number of feedback rounds applied.
  int rounds() const { return static_cast<int>(history_.size()); }

  /// True once Start has been called.
  bool started() const { return query_.has_value(); }

 private:
  void Replay();

  const std::vector<linalg::Vector>* database_;
  const index::KnnIndex* knn_;
  QclusterOptions options_;
  QclusterEngine engine_;

  std::optional<linalg::Vector> query_;
  std::vector<index::Neighbor> initial_result_;
  std::vector<index::Neighbor> current_result_;
  std::vector<SessionRound> history_;
};

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_SESSION_H_
