#ifndef QCLUSTER_CORE_SESSION_H_
#define QCLUSTER_CORE_SESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "core/engine.h"

namespace qcluster::core {

/// A recorded feedback round.
struct SessionRound {
  std::vector<RelevantItem> marked;          ///< What the user marked.
  std::vector<index::Neighbor> result;       ///< The refined result.
  std::vector<Cluster> clusters;             ///< Cluster state snapshot.
  index::SearchStats search_stats;           ///< Cost of the round's query.
};

/// A stateful retrieval session over a QclusterEngine: records every round
/// (marks, results, cluster snapshots), supports undoing the most recent
/// feedback — the "oops, unmark that" interaction every interactive CBIR
/// front-end needs — and exposes the full history for inspection.
///
/// Undo restores the engine's cluster state by replaying the marks of the
/// remaining rounds onto a fresh engine; with the library's deterministic
/// algorithms this reproduces the exact pre-feedback state.
///
/// Thread-safe: all session state (engine, query, results, history) is
/// guarded by one internal mutex — mutators serialize, and the accessors
/// return consistent snapshots by value, never references into guarded
/// state. This is the contract the roadmap's long-lived session server
/// builds on (concurrent status reads while a round is in flight).
///
/// The engine's cross-round candidate cache (index::WarmStart) rides
/// inside `engine_` and therefore under the same mutex: each session owns
/// an independent cache, so concurrent sessions over one shared database
/// and index never share warm-start state.
class RetrievalSession {
 public:
  /// Wraps an engine configuration over `database`/`knn` (both outlive the
  /// session).
  RetrievalSession(const std::vector<linalg::Vector>* database,
                   const index::KnnIndex* knn, const QclusterOptions& options);

  /// Starts (or restarts) the session at the example image.
  std::vector<index::Neighbor> Start(const linalg::Vector& query)
      QCLUSTER_EXCLUDES(mu_);

  /// One feedback round; recorded in the history.
  std::vector<index::Neighbor> Feedback(
      const std::vector<RelevantItem>& marked) QCLUSTER_EXCLUDES(mu_);

  /// Undoes the most recent feedback round, restoring results and cluster
  /// state to the previous round. Returns false when there is nothing to
  /// undo (no feedback yet).
  bool Undo() QCLUSTER_EXCLUDES(mu_);

  /// The current result set (initial or latest refined).
  [[nodiscard]] std::vector<index::Neighbor> current_result() const
      QCLUSTER_EXCLUDES(mu_);

  /// Completed feedback rounds, oldest first.
  [[nodiscard]] std::vector<SessionRound> history() const
      QCLUSTER_EXCLUDES(mu_);

  /// Current cluster state (empty before the first feedback).
  [[nodiscard]] std::vector<Cluster> clusters() const QCLUSTER_EXCLUDES(mu_);

  /// Number of feedback rounds applied.
  [[nodiscard]] int rounds() const QCLUSTER_EXCLUDES(mu_);

  /// True once Start has been called.
  [[nodiscard]] bool started() const QCLUSTER_EXCLUDES(mu_);

  /// Number of candidate ids resident in this session's cross-round
  /// warm-start cache — the state the next round's θ₀ certificate will be
  /// seeded from (0 before Start or with use_query_cache off).
  [[nodiscard]] int warm_candidates() const QCLUSTER_EXCLUDES(mu_);

 private:
  std::vector<index::Neighbor> FeedbackLocked(
      const std::vector<RelevantItem>& marked) QCLUSTER_REQUIRES(mu_);
  void ReplayLocked() QCLUSTER_REQUIRES(mu_);

  // Set in the ctor, read-only ever after (const-qualifying them would
  // delete the move assignment sessions rely on), so reads need no lock.
  // qlint: unguarded(immutable after ctor)
  const std::vector<linalg::Vector>* database_;
  // qlint: unguarded(immutable after ctor)
  const index::KnnIndex* knn_;
  // qlint: unguarded(immutable after ctor)
  QclusterOptions options_;

  mutable Mutex mu_;
  QclusterEngine engine_ QCLUSTER_GUARDED_BY(mu_);
  /// Trace id all of this session's rounds record under; assigned by Start.
  std::uint64_t trace_id_ QCLUSTER_GUARDED_BY(mu_) = 0;
  std::optional<linalg::Vector> query_ QCLUSTER_GUARDED_BY(mu_);
  std::vector<index::Neighbor> initial_result_ QCLUSTER_GUARDED_BY(mu_);
  std::vector<index::Neighbor> current_result_ QCLUSTER_GUARDED_BY(mu_);
  std::vector<SessionRound> history_ QCLUSTER_GUARDED_BY(mu_);
};

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_SESSION_H_
