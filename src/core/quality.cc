#include "core/quality.h"

#include "common/check.h"

namespace qcluster::core {

using linalg::Vector;

LeaveOneOutReport LeaveOneOutError(const std::vector<Cluster>& clusters,
                                   const ClassifierOptions& options) {
  LeaveOneOutReport report;
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const Cluster& cluster = clusters[ci];
    for (std::size_t pi = 0; pi < cluster.points().size(); ++pi) {
      ++report.total;
      if (cluster.size() <= 1) continue;  // Removal empties the cluster.

      // Rebuild the point's cluster without it; other clusters unchanged.
      Cluster reduced(cluster.dim());
      for (std::size_t pj = 0; pj < cluster.points().size(); ++pj) {
        if (pj == pi) continue;
        reduced.Add(cluster.points()[pj], cluster.scores()[pj]);
      }
      std::vector<Cluster> candidate_set;
      candidate_set.reserve(clusters.size());
      for (std::size_t cj = 0; cj < clusters.size(); ++cj) {
        candidate_set.push_back(cj == ci ? reduced : clusters[cj]);
      }

      const std::vector<double> scores = ClassificationScores(
          candidate_set, cluster.points()[pi], options);
      std::size_t best = 0;
      for (std::size_t s = 1; s < scores.size(); ++s) {
        if (scores[s] > scores[best]) best = s;
      }
      if (best == ci) ++report.correct;
    }
  }
  return report;
}

}  // namespace qcluster::core
