#include "core/hierarchical.h"

#include <algorithm>

#include "common/check.h"

namespace qcluster::core {

using linalg::Vector;

namespace {

double LinkageDistance(const Cluster& a, const Cluster& b, Linkage linkage) {
  switch (linkage) {
    case Linkage::kCentroid:
      return linalg::SquaredDistance(a.centroid(), b.centroid());
    case Linkage::kSingle: {
      double best = std::numeric_limits<double>::infinity();
      for (const Vector& pa : a.points()) {
        for (const Vector& pb : b.points()) {
          best = std::min(best, linalg::SquaredDistance(pa, pb));
        }
      }
      return best;
    }
    case Linkage::kComplete: {
      double worst = 0.0;
      for (const Vector& pa : a.points()) {
        for (const Vector& pb : b.points()) {
          worst = std::max(worst, linalg::SquaredDistance(pa, pb));
        }
      }
      return worst;
    }
  }
  return 0.0;
}

}  // namespace

std::vector<Cluster> HierarchicalCluster(const std::vector<Vector>& points,
                                         const std::vector<double>& scores,
                                         const HierarchicalOptions& options) {
  QCLUSTER_CHECK(points.size() == scores.size());
  QCLUSTER_CHECK(options.target_clusters >= 1);

  std::vector<Cluster> clusters;
  clusters.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    clusters.push_back(Cluster::FromPoint(points[i], scores[i]));
  }

  while (static_cast<int>(clusters.size()) > options.target_clusters) {
    // O(g²) closest-pair scan per merge; relevant sets are small (≤ k).
    int best_i = -1;
    int best_j = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double d =
            LinkageDistance(clusters[i], clusters[j], options.linkage);
        if (d < best_d) {
          best_d = d;
          best_i = static_cast<int>(i);
          best_j = static_cast<int>(j);
        }
      }
    }
    if (best_d > options.max_merge_distance) break;
    clusters[static_cast<std::size_t>(best_i)] =
        Cluster::Merged(clusters[static_cast<std::size_t>(best_i)],
                        clusters[static_cast<std::size_t>(best_j)]);
    clusters.erase(clusters.begin() + best_j);
  }
  return clusters;
}

}  // namespace qcluster::core
