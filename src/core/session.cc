#include "core/session.h"

#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/trace.h"

namespace qcluster::core {

RetrievalSession::RetrievalSession(
    const std::vector<linalg::Vector>* database, const index::KnnIndex* knn,
    const QclusterOptions& options)
    : database_(database),
      knn_(knn),
      options_(options),
      engine_(database, knn, options) {}

std::vector<index::Neighbor> RetrievalSession::Start(
    const linalg::Vector& query) {
  QCLUSTER_TIMED("session.start");
  MetricAdd("session.starts");
  MutexLock lock(mu_);
  trace_id_ = trace::NewTraceId();
  QCLUSTER_TRACE_ROUND(trace_round, trace_id_, 0);
  QCLUSTER_TRACE_SPAN(span, "session.start");
  query_ = query;
  history_.clear();
  initial_result_ = engine_.InitialQuery(query);
  current_result_ = initial_result_;
  return current_result_;
}

std::vector<index::Neighbor> RetrievalSession::Feedback(
    const std::vector<RelevantItem>& marked) {
  QCLUSTER_TIMED("session.round");
  MutexLock lock(mu_);
  QCLUSTER_TRACE_ROUND(trace_round, trace_id_,
                       static_cast<int>(history_.size()) + 1);
  QCLUSTER_TRACE_SPAN(span, "session.round");
  span.AddAttr("marked", marked.size());
  return FeedbackLocked(marked);
}

std::vector<index::Neighbor> RetrievalSession::FeedbackLocked(
    const std::vector<RelevantItem>& marked) {
  QCLUSTER_CHECK_MSG(query_.has_value(), "call Start before Feedback");
  SessionRound round;
  round.marked = marked;
  round.result = engine_.Feedback(marked);
  round.clusters = engine_.clusters();
  round.search_stats = engine_.last_search_stats();
  current_result_ = round.result;
  history_.push_back(std::move(round));
  MetricAdd("session.rounds");
  MetricGauge("session.clusters",
              static_cast<double>(engine_.clusters().size()));
  return current_result_;
}

bool RetrievalSession::Undo() {
  MutexLock lock(mu_);
  if (history_.empty()) return false;
  history_.pop_back();
  MetricAdd("session.undos");
  ReplayLocked();
  return true;
}

void RetrievalSession::ReplayLocked() {
  QCLUSTER_CHECK(query_.has_value());
  // Deterministic replay of the remaining rounds restores the exact
  // engine state (clusters, dedup set, query cache) of that point in time.
  const std::vector<SessionRound> kept = std::move(history_);
  history_.clear();
  initial_result_ = engine_.InitialQuery(*query_);
  current_result_ = initial_result_;
  for (const SessionRound& round : kept) {
    // The replayed round's result is recorded in history_; only the engine
    // state transition matters here.
    DiscardResult(FeedbackLocked(round.marked));
  }
}

std::vector<index::Neighbor> RetrievalSession::current_result() const {
  MutexLock lock(mu_);
  return current_result_;
}

std::vector<SessionRound> RetrievalSession::history() const {
  MutexLock lock(mu_);
  return history_;
}

std::vector<Cluster> RetrievalSession::clusters() const {
  MutexLock lock(mu_);
  return engine_.clusters();
}

int RetrievalSession::rounds() const {
  MutexLock lock(mu_);
  return static_cast<int>(history_.size());
}

bool RetrievalSession::started() const {
  MutexLock lock(mu_);
  return query_.has_value();
}

int RetrievalSession::warm_candidates() const {
  MutexLock lock(mu_);
  return engine_.warm_start().size();
}

}  // namespace qcluster::core
