#include "core/session.h"

#include "common/check.h"
#include "common/metrics.h"

namespace qcluster::core {

RetrievalSession::RetrievalSession(
    const std::vector<linalg::Vector>* database, const index::KnnIndex* knn,
    const QclusterOptions& options)
    : database_(database),
      knn_(knn),
      options_(options),
      engine_(database, knn, options) {}

std::vector<index::Neighbor> RetrievalSession::Start(
    const linalg::Vector& query) {
  QCLUSTER_TIMED("session.start");
  MetricAdd("session.starts");
  query_ = query;
  history_.clear();
  initial_result_ = engine_.InitialQuery(query);
  current_result_ = initial_result_;
  return current_result_;
}

std::vector<index::Neighbor> RetrievalSession::Feedback(
    const std::vector<RelevantItem>& marked) {
  QCLUSTER_CHECK_MSG(started(), "call Start before Feedback");
  QCLUSTER_TIMED("session.round");
  SessionRound round;
  round.marked = marked;
  round.result = engine_.Feedback(marked);
  round.clusters = engine_.clusters();
  round.search_stats = engine_.last_search_stats();
  current_result_ = round.result;
  history_.push_back(std::move(round));
  MetricAdd("session.rounds");
  MetricGauge("session.clusters",
              static_cast<double>(engine_.clusters().size()));
  return current_result_;
}

bool RetrievalSession::Undo() {
  if (history_.empty()) return false;
  history_.pop_back();
  MetricAdd("session.undos");
  Replay();
  return true;
}

void RetrievalSession::Replay() {
  QCLUSTER_CHECK(started());
  // Deterministic replay of the remaining rounds restores the exact
  // engine state (clusters, dedup set, query cache) of that point in time.
  const std::vector<SessionRound> kept = std::move(history_);
  history_.clear();
  initial_result_ = engine_.InitialQuery(*query_);
  current_result_ = initial_result_;
  for (const SessionRound& round : kept) {
    Feedback(round.marked);
  }
}

}  // namespace qcluster::core
