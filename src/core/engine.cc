#include "core/engine.h"

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace qcluster::core {

using linalg::Vector;

QclusterEngine::QclusterEngine(const std::vector<Vector>* database,
                               const index::KnnIndex* knn,
                               const QclusterOptions& options)
    : database_(database), knn_(knn), options_(options) {
  QCLUSTER_CHECK(database != nullptr);
  QCLUSTER_CHECK(knn != nullptr);
  QCLUSTER_CHECK(options.k > 0);
  QCLUSTER_CHECK(0.0 < options.alpha && options.alpha < 1.0);
  QCLUSTER_CHECK(options.max_clusters >= 1);
  QCLUSTER_CHECK(options.initial_clusters >= 1);
  if (options.pca_dims != 0 && !database->empty()) {
    filter_refine_ = std::make_unique<index::FilterRefineIndex>(
        database, options.pca_dims);
  }
}

std::uint64_t QclusterEngine::EnsureTraceId() {
  // A surrounding session context wins; the lazy engine-owned id only
  // exists for callers driving the engine directly.
  if (trace::CurrentContext().trace_id != 0) return 0;
  if (trace_id_ == 0 && trace::TracingEnabled()) {
    trace_id_ = trace::NewTraceId();
  }
  return trace_id_;
}

std::vector<index::Neighbor> QclusterEngine::InitialQuery(
    const Vector& query) {
  Reset();
  QCLUSTER_TRACE_ROUND(trace_round, EnsureTraceId(), 0);
  QCLUSTER_TRACE_SPAN(round_span, "engine.initial_query");
  round_span.AddAttr("k", options_.k);
  QCLUSTER_TIMED("engine.initial_query");
  MetricAdd("engine.initial_queries");
  const index::EuclideanDistance dist(query);
  return RunQuery(dist);
}

std::vector<index::Neighbor> QclusterEngine::Feedback(
    const std::vector<RelevantItem>& marked) {
  QCLUSTER_TRACE_ROUND(trace_round, EnsureTraceId(), iteration_ + 1);
  QCLUSTER_TRACE_SPAN(round_span, "feedback.total");
  round_span.AddAttr("marked", marked.size());
  QCLUSTER_TIMED("feedback.total");
  // Collect the genuinely new relevant points.
  std::vector<Vector> points;
  std::vector<double> scores;
  for (const RelevantItem& item : marked) {
    QCLUSTER_CHECK(0 <= item.id &&
                   item.id < static_cast<int>(database_->size()));
    QCLUSTER_CHECK(item.score > 0.0);
    if (!seen_ids_.insert(item.id).second) continue;
    points.push_back((*database_)[static_cast<std::size_t>(item.id)]);
    scores.push_back(item.score);
  }
  QCLUSTER_CHECK_MSG(!clusters_.empty() || !points.empty(),
                     "feedback requires at least one relevant image");
  MetricAdd("engine.feedback.new_points",
            static_cast<long long>(points.size()));

  {
    QCLUSTER_TRACE_SPAN(span, "feedback.classify");
    span.AddAttr("new_points", points.size());
    QCLUSTER_TIMED("feedback.classify");
    if (clusters_.empty()) {
      // First round: hierarchical clustering of the relevant set
      // (Algorithm 1 step 1).
      HierarchicalOptions h;
      h.target_clusters = options_.initial_clusters;
      clusters_ = HierarchicalCluster(points, scores, h);
    } else if (!points.empty()) {
      // Later rounds: adaptive classification (Algorithm 2), under the floor
      // established by the previous round's clusters.
      ClassifierOptions c;
      c.alpha = options_.alpha;
      c.scheme = options_.scheme;
      c.min_variance = floor_ > 0.0 ? floor_ : options_.min_variance;
      c.use_individual_covariances = options_.use_individual_covariances;
      ClassifyBatch(clusters_, points, scores, c);
    }
  }
  UpdateVarianceFloor();

  {
    // Cluster merging (Algorithm 3).
    QCLUSTER_TRACE_SPAN(span, "feedback.merge");
    span.AddAttr("clusters_before", clusters_.size());
    QCLUSTER_TIMED("feedback.merge");
    MergeOptions m;
    m.alpha = options_.alpha;
    m.max_clusters = options_.max_clusters;
    m.scheme = options_.scheme;
    m.min_variance = floor_;
    MergeClusters(clusters_, m);
    span.AddAttr("clusters_after", clusters_.size());
  }
  UpdateVarianceFloor();

  ++iteration_;
  MetricAdd("engine.feedback.rounds");
  MetricGauge("engine.clusters", static_cast<double>(clusters_.size()));
  QCLUSTER_TRACE_SPAN(span, "feedback.knn_query");
  span.AddAttr("k", options_.k);
  span.AddAttr("clusters", clusters_.size());
  QCLUSTER_TIMED("feedback.knn_query");
  return RunQuery(CurrentDistance());
}

void QclusterEngine::UpdateVarianceFloor() {
  QCLUSTER_TRACE_SPAN(span, "feedback.variance_floor");
  QCLUSTER_TIMED("feedback.variance_floor");
  floor_ = options_.min_variance;
  if (options_.adaptive_floor_fraction <= 0.0 || clusters_.empty()) return;
  // Mean diagonal of the pooled within-cluster covariance (Eq. 7 without
  // the per-cluster floor): the scale of "typical" relevant-image spread
  // that small clusters shrink toward.
  std::vector<const stats::WeightedStats*> groups;
  groups.reserve(clusters_.size());
  for (const Cluster& c : clusters_) groups.push_back(&c.stats());
  const linalg::Matrix pooled = stats::PooledCovariance(groups);
  double mean_diag = 0.0;
  for (int d = 0; d < pooled.rows(); ++d) mean_diag += pooled(d, d);
  mean_diag /= pooled.rows();
  const double adaptive = options_.adaptive_floor_fraction * mean_diag;
  if (adaptive > floor_) floor_ = adaptive;
}

DisjunctiveDistance QclusterEngine::CurrentDistance() const {
  QCLUSTER_CHECK_MSG(!clusters_.empty(),
                     "no clusters yet; run Feedback first");
  return DisjunctiveDistance(clusters_, options_.scheme,
                             floor_ > 0.0 ? floor_ : options_.min_variance,
                             options_.covariance_shrinkage);
}

void QclusterEngine::Reset() {
  clusters_.clear();
  seen_ids_.clear();
  warm_.Clear();
  last_stats_ = index::SearchStats{};
  iteration_ = 0;
  floor_ = 0.0;
  trace_id_ = 0;  // The next query sequence records under a fresh trace.
}

std::vector<index::Neighbor> QclusterEngine::RunQuery(
    const index::DistanceFunction& dist) {
  last_stats_ = index::SearchStats{};
  // pca_dims opts every round into the filter-and-refine scan; it returns
  // exactly what the exhaustive index would.
  const index::KnnIndex* idx =
      filter_refine_ != nullptr
          ? static_cast<const index::KnnIndex*>(filter_refine_.get())
          : knn_;
  if (options_.use_query_cache) {
    // One warm-start path for every index: round t's survivors (recorded
    // into warm_ by SearchWarm itself) seed round t+1's certified θ₀
    // pruning bound. Results stay bit-for-bit identical to cold searches.
    return idx->SearchWarm(dist, options_.k, warm_, &last_stats_);
  }
  return idx->Search(dist, options_.k, &last_stats_);
}

}  // namespace qcluster::core
