#include "core/invariants.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector.h"

namespace qcluster::core {

namespace {

/// Frobenius norm of the entry-wise difference of two equal-shape matrices.
double MaxAbsDiff(const linalg::Matrix& x, const linalg::Matrix& y) {
  double max_diff = 0.0;
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      max_diff = std::max(max_diff, std::abs(x(r, c) - y(r, c)));
    }
  }
  return max_diff;
}

double MaxAbs(const linalg::Matrix& x) {
  double max_abs = 0.0;
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      max_abs = std::max(max_abs, std::abs(x(r, c)));
    }
  }
  return max_abs;
}

}  // namespace

Status ValidateMergeClosure(const stats::WeightedStats& a,
                            const stats::WeightedStats& b,
                            const stats::WeightedStats& merged) {
  if (a.n() == 0 || b.n() == 0) return Status::OK();  // Trivial merges copy.
  if (a.dim() != b.dim() || a.dim() != merged.dim()) {
    return Status::FailedPrecondition(
        "merge closure: dimension mismatch violates Eq. 11-13");
  }
  // Eq. 11: m = m_i + m_j (and point counts add).
  const double expected_weight = a.weight() + b.weight();
  if (merged.n() != a.n() + b.n() ||
      std::abs(merged.weight() - expected_weight) >
          kAuditClosureTol * std::max(expected_weight, 1.0)) {
    return Status::FailedPrecondition(
        "merge closure: combined weight " + std::to_string(merged.weight()) +
        " != " + std::to_string(expected_weight) + " violates Eq. 11");
  }
  // Eq. 12: x̄ = (m_i x̄_i + m_j x̄_j) / m.
  const linalg::Vector expected_mean = linalg::Scale(
      linalg::Add(linalg::Scale(a.mean(), a.weight()),
                  linalg::Scale(b.mean(), b.weight())),
      1.0 / expected_weight);
  const double mean_scale =
      std::max({linalg::Norm(expected_mean), linalg::Norm(merged.mean()),
                1.0});
  if (linalg::Norm(linalg::Sub(merged.mean(), expected_mean)) >
      kAuditClosureTol * mean_scale) {
    return Status::FailedPrecondition(
        "merge closure: merged mean drifts from the Eq. 12 weighted "
        "combination");
  }
  // Eq. 13 (scatter identity): S = S_i + S_j + (m_i m_j / m) δδ'.
  const linalg::Vector diff = linalg::Sub(a.mean(), b.mean());
  const double cross = a.weight() * b.weight() / expected_weight;
  const linalg::Matrix expected_scatter =
      a.scatter().Add(b.scatter()).Add(
          linalg::OuterProduct(diff, diff).Scale(cross));
  const double scatter_scale =
      std::max({MaxAbs(expected_scatter), MaxAbs(merged.scatter()), 1.0});
  if (MaxAbsDiff(merged.scatter(), expected_scatter) >
      kAuditClosureTol * scatter_scale) {
    return Status::FailedPrecondition(
        "merge closure: merged scatter drifts from the Eq. 13 identity");
  }
  return Status::OK();
}

Status ValidateDisjunctiveAggregate(const double* d2, const double* weights,
                                    std::size_t n, double total_weight,
                                    double result) {
  if (n == 0) {
    return Status::FailedPrecondition(
        "disjunctive aggregate over zero clusters violates Eq. 5");
  }
  if (!(total_weight > 0.0)) {
    return Status::FailedPrecondition(
        "disjunctive aggregate: total weight " +
        std::to_string(total_weight) + " <= 0 violates Eq. 5");
  }
  double min_d2 = d2[0];
  double max_d2 = d2[0];
  bool any_zero = false;
  bool all_finite = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(weights[i] > 0.0)) {
      return Status::FailedPrecondition(
          "disjunctive aggregate: cluster weight " +
          std::to_string(weights[i]) + " <= 0 violates Eq. 5");
    }
    if (std::isnan(d2[i]) || d2[i] < 0.0) {
      return Status::FailedPrecondition(
          "disjunctive aggregate: per-cluster d² " + std::to_string(d2[i]) +
          " negative or NaN violates Eq. 4/5 non-negativity");
    }
    min_d2 = std::min(min_d2, d2[i]);
    max_d2 = std::max(max_d2, d2[i]);
    any_zero = any_zero || d2[i] <= 0.0;
    all_finite = all_finite && std::isfinite(d2[i]);
  }
  if (std::isnan(result) || result < 0.0) {
    return Status::FailedPrecondition(
        "disjunctive aggregate: result " + std::to_string(result) +
        " negative or NaN violates Eq. 5 non-negativity");
  }
  if (any_zero) {
    if (result != 0.0) {
      return Status::FailedPrecondition(
          "disjunctive aggregate: zero per-cluster distance must yield a "
          "zero fuzzy-OR aggregate (Eq. 5), got " + std::to_string(result));
    }
    return Status::OK();
  }
  // Weighted harmonic-style mean: min d²ᵢ <= result <= max d²ᵢ. Skipped
  // when some input is infinite (a pruned-away cluster bound) — the mean is
  // then only constrained from below.
  if (all_finite && std::isfinite(result)) {
    const double lo = min_d2 * (1.0 - 1e-9) - 1e-300;
    const double hi = max_d2 * (1.0 + 1e-9) + 1e-300;
    if (result < lo || result > hi) {
      return Status::FailedPrecondition(
          "disjunctive aggregate: result " + std::to_string(result) +
          " outside the [min, max] harmonic-mean bounds of Eq. 5");
    }
  } else if (std::isfinite(result) && result < min_d2 * (1.0 - 1e-9)) {
    return Status::FailedPrecondition(
        "disjunctive aggregate: result " + std::to_string(result) +
        " below the min-d² lower bound of Eq. 5");
  }
  return Status::OK();
}

}  // namespace qcluster::core
