#ifndef QCLUSTER_CORE_HIERARCHICAL_H_
#define QCLUSTER_CORE_HIERARCHICAL_H_

#include <limits>
#include <vector>

#include "core/cluster.h"

namespace qcluster::core {

/// Linkage criteria for the initial agglomerative clustering (Sec. 4.1:
/// "we use the hierarchical clustering algorithm that groups data into
/// hyperspherical regions").
enum class Linkage {
  kCentroid,  ///< Euclidean distance between weighted centroids.
  kSingle,    ///< Minimum pairwise member distance.
  kComplete,  ///< Maximum pairwise member distance.
};

/// Parameters for the initial clustering of the first feedback round
/// (Algorithm 1 step 1).
struct HierarchicalOptions {
  /// Stop once this many clusters remain.
  int target_clusters = 3;
  /// Additionally stop when the closest pair is farther than this
  /// (squared Euclidean distance); infinity disables the rule.
  double max_merge_distance = std::numeric_limits<double>::infinity();
  Linkage linkage = Linkage::kCentroid;
};

/// Bottom-up agglomerative clustering: every point starts as a singleton
/// cluster; the closest pair (under the linkage) merges until the stopping
/// rule triggers. Scores weight the centroids exactly as in Eq. 2.
std::vector<Cluster> HierarchicalCluster(
    const std::vector<linalg::Vector>& points,
    const std::vector<double>& scores, const HierarchicalOptions& options);

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_HIERARCHICAL_H_
