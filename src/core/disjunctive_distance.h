#ifndef QCLUSTER_CORE_DISJUNCTIVE_DISTANCE_H_
#define QCLUSTER_CORE_DISJUNCTIVE_DISTANCE_H_

#include <cstddef>
#include <vector>

#include "core/cluster.h"
#include "index/distance.h"
#include "linalg/simd.h"

namespace qcluster::core {

/// The aggregate dissimilarity of Eq. 5, the paper's disjunctive multipoint
/// query metric:
///
///   d²(Q, x) = Σ_i m_i  /  Σ_i [ m_i / d²_i(x) ]
///
/// where d²_i(x) = (x − x̄_i)' S_i^{-1} (x − x̄_i) is the per-cluster
/// generalized distance of Eq. 1. This is the α = −2 weighted power mean of
/// the per-cluster distances — a fuzzy OR: proximity to *any* representative
/// dominates, so separated contours (Fig. 1(c), Fig. 5) are retrieved
/// together.
///
/// A point exactly at a centroid has distance 0. Rectangle pruning uses the
/// same harmonic combination of per-cluster lower bounds, which is a valid
/// lower bound because the aggregate is monotone in each d²_i.
///
/// Scoring is allocation-free on the hot path: diagonal cluster metrics
/// (the adopted scheme) use an O(d) per-dimension loop, and full metrics
/// reuse a per-thread diff scratch buffer, so both the scalar and the
/// batched entry points are safe to call concurrently from the scan pool.
class DisjunctiveDistance final : public index::DistanceFunction {
 public:
  /// Captures centroids, weights, and inverse covariances of `clusters`
  /// under `scheme`. The distance object is self-contained: later changes
  /// to the clusters do not affect it.
  DisjunctiveDistance(const std::vector<Cluster>& clusters,
                      stats::CovarianceScheme scheme, double min_variance);

  /// Like above, with RDA-style covariance shrinkage: each cluster metric
  /// uses S_i' = (1 − λ) S_i + λ S_pooled, where S_pooled is the pooled
  /// covariance across all clusters (Eq. 7). Shrinkage stabilizes the
  /// ellipsoids of small clusters (few marked images) whose sample
  /// covariances are unreliable. λ = 0 reproduces the plain constructor.
  DisjunctiveDistance(const std::vector<Cluster>& clusters,
                      stats::CovarianceScheme scheme, double min_variance,
                      double shrinkage);

  int dim() const override { return dim_; }
  double Distance(const linalg::Vector& x) const override;
  void DistanceBatch(const linalg::FlatView& view,
                     double* out) const override;
  double MinDistance(const index::Rect& rect) const override;

  /// One component per cluster (centroid, Sᵢ⁻¹, mᵢ) under the harmonic
  /// Eq. 5 combine — the structure the filter-and-refine index lower-bounds
  /// cluster-wise (Eq. 5 is monotone in each per-cluster distance).
  bool Decompose(index::QuadraticDecomposition* out) const override;

  /// Number of query points (clusters) in the aggregate.
  int cluster_count() const { return static_cast<int>(centroids_.size()); }

 private:
  /// Eq. 1 for cluster `i` at the raw point `x` (length dim_): O(d) for
  /// diagonal metrics, O(d²) with per-thread scratch for full ones.
  double ClusterDistance(std::size_t i, const double* x) const;

  /// Borrows this object's clusters as the kernel-facing Eq. 5 spec. The
  /// component views live in per-thread storage (rebuilt per call, pointer
  /// fills only), so copies of this object stay safe and concurrent scans
  /// never share them.
  linalg::simd::HarmonicSpec BuildHarmonicSpec() const;

  /// Eq. 5 at the raw point `x`.
  double ScoreRow(const double* x) const;

  /// Eq. 5 over precomputed per-cluster squared distances d2[0..n).
  double Aggregate(const double* d2, std::size_t n) const;

  int dim_;
  std::vector<linalg::Vector> centroids_;
  std::vector<double> weights_;                  ///< m_i.
  std::vector<linalg::Matrix> inverse_covs_;     ///< S_i^{-1}.
  std::vector<double> min_eigenvalues_;          ///< λ_min(S_i^{-1}) for bounds.
  /// Exact per-dimension bound weights when S_i^{-1} is diagonal (the
  /// default scheme); empty vector for full matrices (λ_min fallback).
  std::vector<linalg::Vector> diagonal_weights_;
  double total_weight_;
};

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_DISJUNCTIVE_DISTANCE_H_
