#ifndef QCLUSTER_CORE_ENGINE_H_
#define QCLUSTER_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/classifier.h"
#include "core/cluster.h"
#include "core/disjunctive_distance.h"
#include "core/hierarchical.h"
#include "core/merging.h"
#include "core/retrieval_method.h"
#include "index/filter_refine.h"
#include "index/knn.h"

namespace qcluster::core {

/// All tunables of the Qcluster retrieval loop.
struct QclusterOptions {
  /// Result size k of every k-NN round (the paper uses k = 100).
  int k = 100;
  /// Significance level α shared by the effective radius (Lemma 1) and the
  /// merge test (Eq. 16).
  double alpha = 0.05;
  /// Cluster-count cap handed to the merging stage ("a given size").
  int max_clusters = 5;
  /// Target cluster count of the initial hierarchical clustering.
  int initial_clusters = 3;
  /// Covariance scheme for every quadratic form (diagonal by default, the
  /// configuration the paper adopts after Fig. 6).
  stats::CovarianceScheme scheme = stats::CovarianceScheme::kDiagonal;
  /// Absolute variance floor protecting degenerate covariances.
  double min_variance = 1e-4;
  /// Shrinkage fraction for the adaptive variance floor: each cluster's
  /// per-dimension variance is floored at this fraction of the mean pooled
  /// variance across all current clusters. Small clusters (few marked
  /// images) otherwise produce near-zero variances whose over-tight
  /// ellipsoids rank background between the modes above unmarked category
  /// members. 0 disables the adaptation.
  double adaptive_floor_fraction = 0.1;
  /// Use per-cluster covariances in the classification stage (QDA, Eq. 8's
  /// special case) instead of the paper's pooled simplification (Eq. 10).
  bool use_individual_covariances = false;
  /// RDA-style covariance shrinkage λ applied to the disjunctive metric:
  /// S_i' = (1 − λ) S_i + λ S_pooled. An extension beyond the paper that
  /// regularizes small-cluster ellipsoids; 0 (default) reproduces the
  /// paper's metric exactly. See bench_ablation_shrinkage.
  double covariance_shrinkage = 0.0;
  /// Reuse the previous round's survivors across feedback iterations (the
  /// multipoint refinement optimization measured in Fig. 7, generalized to
  /// the session-resident index::WarmStart cache): every k-NN round runs
  /// through KnnIndex::SearchWarm, which re-scores the cached survivors for
  /// a certified θ₀ upper bound on the k-th distance and prunes with it.
  /// Effective on every index path — BrTree skips cached leaves, the linear
  /// scan rejects at heap admission, filter-refine tightens its survivor
  /// bound, the VA-file stops its candidate walk early — and results stay
  /// bit-for-bit identical to cold searches.
  bool use_query_cache = true;
  /// Dimensionality k' of the PCA filter-and-refine pre-filter (Sec. 4.4 /
  /// Eq. 17-19). 0 (default) disables it and queries go to the engine's
  /// index unchanged; > 0 routes every k-NN round through a
  /// FilterRefineIndex with that many reduced dimensions per metric
  /// component; < 0 picks k' = max(1, d/4) automatically. Results are
  /// bit-for-bit identical either way — the filter only prunes.
  int pca_dims = 0;
};

/// The Qcluster retrieval engine — Algorithm 1.
///
/// Drives the full relevance feedback loop: an initial query-by-example
/// k-NN round, then per-iteration adaptive classification (Algorithm 2),
/// cluster merging (Algorithm 3), and disjunctive multipoint re-query
/// (Eq. 5). Usage:
///
///   QclusterEngine engine(&features, &tree, options);
///   auto result = engine.InitialQuery(features[q]);
///   for (int it = 0; it < 5; ++it) {
///     std::vector<RelevantItem> marked = user_judgement(result);
///     result = engine.Feedback(marked);
///   }
class QclusterEngine final : public RetrievalMethod {
 public:
  /// `database` and `knn` must outlive the engine. When
  /// options.use_query_cache is set, refined queries are warm-started from
  /// the previous iteration's candidates via the engine's WarmStart cache,
  /// whichever index serves them.
  QclusterEngine(const std::vector<linalg::Vector>* database,
                 const index::KnnIndex* knn, const QclusterOptions& options);

  std::string name() const override { return "qcluster"; }

  /// Algorithm 1 step 1, first half: plain k-NN around the example point.
  std::vector<index::Neighbor> InitialQuery(
      const linalg::Vector& query) override;

  /// One relevance feedback round: incorporates the newly marked relevant
  /// images (previously seen ids are ignored — they are already inside the
  /// clusters), reruns classification + merging, and answers the refined
  /// disjunctive k-NN query. Requires at least one *total* relevant point
  /// across all rounds so far.
  std::vector<index::Neighbor> Feedback(
      const std::vector<RelevantItem>& marked) override;

  /// Current query clusters (empty before the first Feedback call).
  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// 0 before feedback, then the number of completed feedback rounds.
  int iteration() const { return iteration_; }

  /// Cost counters of the most recent k-NN round.
  const index::SearchStats& last_search_stats() const override {
    return last_stats_;
  }

  /// The current disjunctive metric; valid once clusters exist.
  DisjunctiveDistance CurrentDistance() const;

  /// Resets all feedback state, keeping database/index/options.
  void Reset() override;

  /// The variance floor in effect for the current clusters (the adaptive
  /// shrinkage floor, at least options.min_variance).
  double effective_min_variance() const { return floor_; }

  /// The session-resident cross-round candidate cache (empty before the
  /// first round or with use_query_cache off). Exposed for tests and for
  /// RetrievalSession's cache introspection.
  const index::WarmStart& warm_start() const { return warm_; }

 private:
  std::vector<index::Neighbor> RunQuery(const index::DistanceFunction& dist);
  void UpdateVarianceFloor();
  /// Trace id for a directly-driven round: 0 when a surrounding context is
  /// already active, otherwise the engine's lazily allocated own id.
  std::uint64_t EnsureTraceId();

  const std::vector<linalg::Vector>* database_;
  const index::KnnIndex* knn_;
  QclusterOptions options_;
  /// Engine-owned filter-and-refine pipeline; non-null iff
  /// options.pca_dims != 0, in which case RunQuery routes through it
  /// instead of `knn_`.
  std::unique_ptr<index::FilterRefineIndex> filter_refine_;

  std::vector<Cluster> clusters_;
  std::unordered_set<int> seen_ids_;
  /// Cross-round candidate cache (see index::WarmStart): round t's
  /// survivors seed round t+1's certified θ₀ pruning bound. One per
  /// engine, i.e. one per retrieval session; RetrievalSession serializes
  /// all engine access under its mutex.
  index::WarmStart warm_;
  index::SearchStats last_stats_;
  int iteration_ = 0;
  double floor_ = 0.0;
  /// Trace id the engine's rounds record under when no surrounding session
  /// has established one; allocated lazily, cleared by Reset.
  std::uint64_t trace_id_ = 0;
};

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_ENGINE_H_
