#ifndef QCLUSTER_CORE_MERGING_H_
#define QCLUSTER_CORE_MERGING_H_

#include <vector>

#include "core/cluster.h"
#include "stats/covariance_scheme.h"

namespace qcluster::core {

/// Parameters of the cluster-merging stage (Sec. 4.3, Algorithm 3).
struct MergeOptions {
  /// Significance level α of the Hotelling T² location test. Smaller α
  /// raises the critical distance c², merging more aggressively.
  double alpha = 0.05;
  /// Target number of clusters ("a given size" in Algorithm 3). Merging
  /// continues past statistical significance, with progressively relaxed α
  /// (Algorithm 3 line 8, "increase critical distance c² using α"), until
  /// the cluster count is at most this.
  int max_clusters = 5;
  /// Multiplicative α relaxation applied when the count still exceeds
  /// max_clusters but every remaining pair rejects H0.
  double alpha_relax = 0.1;
  /// Lower bound on the relaxed α; below this, the closest pair (smallest
  /// T²) merges unconditionally so the algorithm always terminates.
  double min_alpha = 1e-9;
  /// Covariance handling for S_pooled^{-1} in T² (Eq. 15).
  stats::CovarianceScheme scheme = stats::CovarianceScheme::kDiagonal;
  /// Variance floor for degenerate pooled covariances (pairs of singleton
  /// clusters have zero scatter).
  double min_variance = 1e-4;
  /// Extension: verify the T² test's equal-covariance assumption (Sec. 4.3)
  /// with Box's M before merging. A pair whose covariances differ
  /// significantly is not merged even when the means are indistinguishable
  /// (unless the max_clusters cap forces it). Applies only when both
  /// clusters are large enough for the test.
  bool check_covariance_homogeneity = false;
  double homogeneity_alpha = 0.01;
};

/// Outcome summary of one merging pass.
struct MergeReport {
  int merges = 0;          ///< Number of merge operations performed.
  double final_alpha = 0;  ///< α in effect when the pass stopped.
  int forced_merges = 0;   ///< Merges forced by the max_clusters cap.
};

/// The pairwise decision quantity of Algorithm 3: T² (Eq. 14) and the
/// critical distance c² (Eq. 16). When the pair is too small for the F
/// distribution (m_i + m_j ≤ p + 1, inevitable for fresh singleton
/// clusters), c² degrades to the asymptotic χ²_p(α) threshold so early
/// iterations still behave sensibly.
struct MergeCandidate {
  int i = 0;
  int j = 0;
  double t2 = 0.0;
  double c2 = 0.0;
  /// Set when Box's M rejected covariance homogeneity for the pair.
  bool heterogeneous = false;
  bool mergeable() const { return !heterogeneous && t2 <= c2; }
};

/// Evaluates the merge test for a single pair at level `alpha`.
MergeCandidate EvaluateMergePair(const std::vector<Cluster>& clusters, int i,
                                 int j, double alpha,
                                 const MergeOptions& options);

/// Algorithm 3: repeatedly merges the pair with the smallest T² while the
/// pair passes its T² ≤ c² test, relaxing α (and finally forcing) while the
/// cluster count exceeds `max_clusters`. Mutates `clusters` in place.
MergeReport MergeClusters(std::vector<Cluster>& clusters,
                          const MergeOptions& options);

}  // namespace qcluster::core

#endif  // QCLUSTER_CORE_MERGING_H_
