#include "core/disjunctive_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/invariants.h"
#include "linalg/eigen_sym.h"

namespace qcluster::core {

using linalg::Vector;

namespace {

/// Gershgorin-disc lower bound on λ_min (clamped to >= 0): the cheap O(d²)
/// fallback when the eigendecomposition fails, still a valid pruning bound.
double GershgorinMinEigenvalueBound(const linalg::Matrix& m) {
  double bound = std::numeric_limits<double>::infinity();
  for (int r = 0; r < m.rows(); ++r) {
    double radius = 0.0;
    for (int c = 0; c < m.cols(); ++c) {
      if (c != r) radius += std::abs(m(r, c));
    }
    bound = std::min(bound, m(r, r) - radius);
  }
  return std::max(bound, 0.0);
}

}  // namespace

DisjunctiveDistance::DisjunctiveDistance(const std::vector<Cluster>& clusters,
                                         stats::CovarianceScheme scheme,
                                         double min_variance)
    : DisjunctiveDistance(clusters, scheme, min_variance, 0.0) {}

DisjunctiveDistance::DisjunctiveDistance(const std::vector<Cluster>& clusters,
                                         stats::CovarianceScheme scheme,
                                         double min_variance, double shrinkage)
    : dim_(0), total_weight_(0.0) {
  QCLUSTER_CHECK_MSG(!clusters.empty(), "need at least one cluster");
  QCLUSTER_CHECK(0.0 <= shrinkage && shrinkage < 1.0);
  dim_ = clusters.front().dim();

  // Pooled covariance for the shrinkage target (Eq. 7 across clusters).
  linalg::Matrix pooled(dim_, dim_, 0.0);
  if (shrinkage > 0.0) {
    std::vector<const stats::WeightedStats*> groups;
    groups.reserve(clusters.size());
    for (const Cluster& c : clusters) groups.push_back(&c.stats());
    pooled = stats::PooledCovariance(groups);
  }

  for (const Cluster& c : clusters) {
    QCLUSTER_CHECK(c.dim() == dim_);
    QCLUSTER_CHECK(c.weight() > 0.0);
    centroids_.push_back(c.centroid());
    weights_.push_back(c.weight());
    if (shrinkage > 0.0) {
      linalg::Matrix blended = c.Covariance().Scale(1.0 - shrinkage)
                                   .Add(pooled.Scale(shrinkage));
      for (int d = 0; d < dim_; ++d) {
        if (blended(d, d) < min_variance) blended(d, d) = min_variance;
      }
      inverse_covs_.push_back(stats::InvertCovariance(blended, scheme));
    } else {
      inverse_covs_.push_back(c.InverseCovariance(scheme, min_variance));
    }
    total_weight_ += c.weight();

    // Tight rectangle bounds: exact per-dimension weights for diagonal
    // metrics (the adopted scheme), spectral fallback otherwise. Diagonal
    // metrics never pay the O(d³) eigendecomposition.
    const linalg::Matrix& inv = inverse_covs_.back();
    bool diagonal = true;
    for (int r = 0; r < dim_ && diagonal; ++r) {
      for (int col = 0; col < dim_; ++col) {
        if (r != col && inv(r, col) != 0.0) {
          diagonal = false;
          break;
        }
      }
    }
    if (diagonal) {
      diagonal_weights_.push_back(inv.Diag());
      min_eigenvalues_.push_back(0.0);
      continue;
    }
    diagonal_weights_.emplace_back();
    double min_eig = 0.0;
    Result<linalg::SymmetricEigen> eigen = linalg::EigenSymmetric(inv);
    if (eigen.ok() && !eigen.value().values.empty()) {
      min_eig = std::max(eigen.value().values.back(), 0.0);
    } else {
      min_eig = GershgorinMinEigenvalueBound(inv);
    }
    min_eigenvalues_.push_back(min_eig);
  }
}

double DisjunctiveDistance::ClusterDistance(std::size_t i,
                                            const double* x) const {
  const auto& kernels = linalg::simd::Kernels();
  const Vector& centroid = centroids_[i];
  const Vector& diag = diagonal_weights_[i];
  if (!diag.empty()) {
    // Diagonal metric fast path: O(d), no scratch at all.
    return kernels.weighted_sq_row(diag.data(), centroid.data(), x, dim_);
  }
  // Full metric: reuse a per-thread diff buffer instead of allocating one
  // per point; the quadratic-form kernel itself is allocation-free.
  static thread_local Vector diff;
  diff.resize(static_cast<std::size_t>(dim_));
  for (int d = 0; d < dim_; ++d) {
    const std::size_t sd = static_cast<std::size_t>(d);
    diff[sd] = x[sd] - centroid[sd];
  }
  return kernels.quadratic_form_row(inverse_covs_[i].data(), diff.data(),
                                    dim_);
}

linalg::simd::HarmonicSpec DisjunctiveDistance::BuildHarmonicSpec() const {
  static thread_local std::vector<linalg::simd::QuadComponentView> views;
  views.resize(centroids_.size());
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    linalg::simd::QuadComponentView& v = views[i];
    v.query = centroids_[i].data();
    v.diagonal =
        diagonal_weights_[i].empty() ? nullptr : diagonal_weights_[i].data();
    v.full = diagonal_weights_[i].empty() ? inverse_covs_[i].data() : nullptr;
    v.weight = weights_[i];
  }
  return linalg::simd::HarmonicSpec{views.data(), views.size(), total_weight_};
}

double DisjunctiveDistance::ScoreRow(const double* x) const {
#ifndef NDEBUG
  if (AuditEnabled()) {
    // Audited path: materialize the per-cluster distances so the Eq. 5
    // aggregation can be validated; routes through Aggregate, which carries
    // the audit. Results are identical — the same ClusterDistance values
    // feed the same accumulation order.
    static thread_local std::vector<double> audit_d2;
    audit_d2.resize(centroids_.size());
    for (std::size_t i = 0; i < centroids_.size(); ++i) {
      audit_d2[i] = ClusterDistance(i, x);
    }
    return Aggregate(audit_d2.data(), audit_d2.size());
  }
#endif
  // Eq. 5 fused in the kernel — no per-point d2 buffer, component loop and
  // per-cluster forms in one call.
  static thread_local std::vector<double> scratch;
  scratch.resize(static_cast<std::size_t>(dim_));
  return linalg::simd::Kernels().harmonic_row(BuildHarmonicSpec(), x, dim_,
                                              scratch.data());
}

double DisjunctiveDistance::Distance(const Vector& x) const {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == dim_);
  return ScoreRow(x.data());
}

void DisjunctiveDistance::DistanceBatch(const linalg::FlatView& view,
                                        double* out) const {
  QCLUSTER_CHECK(view.dim == dim_);
#ifndef NDEBUG
  if (AuditEnabled()) {
    for (std::size_t i = 0; i < view.n; ++i) out[i] = ScoreRow(view.row(i));
    return;
  }
#endif
  static thread_local std::vector<double> scratch;
  scratch.resize(static_cast<std::size_t>(dim_));
  linalg::simd::Kernels().harmonic_batch(BuildHarmonicSpec(), view.data,
                                         view.n, view.dim, scratch.data(),
                                         out);
}

double DisjunctiveDistance::MinDistance(const index::Rect& rect) const {
  static thread_local std::vector<double> d2;
  d2.resize(centroids_.size());
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    if (!diagonal_weights_[i].empty()) {
      // Exact lower bound for a diagonal quadratic form: per-dimension
      // clamped distance, weighted.
      d2[i] = linalg::simd::Kernels().weighted_rect_row(
          diagonal_weights_[i].data(), centroids_[i].data(), rect.lo.data(),
          rect.hi.data(), dim_);
    } else {
      d2[i] =
          min_eigenvalues_[i] * rect.SquaredEuclideanDistance(centroids_[i]);
    }
  }
  return Aggregate(d2.data(), d2.size());
}

bool DisjunctiveDistance::Decompose(index::QuadraticDecomposition* out) const {
  out->components.clear();
  out->harmonic = true;
  out->total_weight = total_weight_;
  out->components.reserve(centroids_.size());
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    index::QuadraticComponent& c = out->components.emplace_back();
    c.query = centroids_[i];
    if (!diagonal_weights_[i].empty()) {
      c.diagonal = diagonal_weights_[i];
    } else {
      c.full = inverse_covs_[i];
    }
    c.weight = weights_[i];
  }
  return true;
}

double DisjunctiveDistance::Aggregate(const double* d2, std::size_t n) const {
  double denom = 0.0;
  double result = 0.0;
  bool zero = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (d2[i] <= 0.0) {
      zero = true;
      break;
    }
    denom += weights_[i] / d2[i];
  }
  if (!zero) {
    result = denom <= 0.0 ? std::numeric_limits<double>::infinity()
                          : total_weight_ / denom;
  }
  // Eq. 5: monotone non-negative aggregation — the fuzzy OR stays within
  // the [min, max] bounds of its per-cluster inputs.
  QCLUSTER_AUDIT(ValidateDisjunctiveAggregate(d2, weights_.data(), n,
                                              total_weight_, result));
  return result;
}

}  // namespace qcluster::core
