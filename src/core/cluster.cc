#include "core/cluster.h"

#include "common/check.h"
#include "core/invariants.h"

namespace qcluster::core {

using linalg::Matrix;
using linalg::Vector;
using stats::CovarianceScheme;

Cluster::Cluster(int dim) : stats_(dim) {}

Cluster Cluster::FromPoint(const Vector& x, double score) {
  Cluster c(static_cast<int>(x.size()));
  c.Add(x, score);
  return c;
}

Cluster Cluster::Merged(const Cluster& a, const Cluster& b) {
  QCLUSTER_CHECK(a.dim() == b.dim());
  Cluster out(a.dim());
  out.stats_ = stats::WeightedStats::Merged(a.stats_, b.stats_);
  // Eq. 11-13: the merged summary must close over the operands' weights,
  // means, and scatters (independent recomputation in the validator).
  QCLUSTER_AUDIT(ValidateMergeClosure(a.stats_, b.stats_, out.stats_));
  out.points_ = a.points_;
  out.points_.insert(out.points_.end(), b.points_.begin(), b.points_.end());
  out.scores_ = a.scores_;
  out.scores_.insert(out.scores_.end(), b.scores_.begin(), b.scores_.end());
  return out;
}

void Cluster::Add(const Vector& x, double score) {
  stats_.AddPoint(x, score);
  points_.push_back(x);
  scores_.push_back(score);
  InvalidateCache();
}

const Matrix& Cluster::InverseCovariance(CovarianceScheme scheme,
                                         double min_variance) const {
  const int slot = scheme == CovarianceScheme::kInverse ? 0 : 1;
  if (!inverse_cache_[slot].has_value() ||
      cached_min_variance_[slot] != min_variance) {
    inverse_cache_[slot] =
        stats::InvertCovariance(FlooredCovariance(min_variance), scheme);
    cached_min_variance_[slot] = min_variance;
  }
  return *inverse_cache_[slot];
}

double Cluster::DistanceSquared(const Vector& x, CovarianceScheme scheme,
                                double min_variance) const {
  QCLUSTER_CHECK(static_cast<int>(x.size()) == dim());
  const Vector diff = linalg::Sub(x, centroid());
  return linalg::QuadraticForm(diff, InverseCovariance(scheme, min_variance),
                               diff);
}

void Cluster::InvalidateCache() {
  inverse_cache_[0].reset();
  inverse_cache_[1].reset();
}

Matrix Cluster::FlooredCovariance(double min_variance) const {
  QCLUSTER_CHECK(min_variance >= 0.0);
  Matrix cov = stats_.Covariance();
  for (int i = 0; i < cov.rows(); ++i) {
    if (cov(i, i) < min_variance) cov(i, i) = min_variance;
  }
  return cov;
}

}  // namespace qcluster::core
