#ifndef QCLUSTER_COMMON_ANNOTATIONS_H_
#define QCLUSTER_COMMON_ANNOTATIONS_H_

/// Clang thread-safety analysis annotations.
///
/// These macros expose Clang's `-Wthread-safety` attribute set under stable
/// library-local names; on any other compiler they expand to nothing, so
/// annotated headers stay portable. The analysis is purely static: every
/// field marked QCLUSTER_GUARDED_BY must only be touched while its mutex is
/// held, every function marked QCLUSTER_REQUIRES can only be called with the
/// capability held, and violations are *compile errors* under the CI
/// `thread-safety` job (Clang with `-Wthread-safety -Wthread-safety-beta
/// -Werror`). TSan then only has to confirm what the compiler already
/// proved — see docs/CORRECTNESS.md, "Static concurrency analysis".
///
/// House rules:
///  - every `qcluster::Mutex` member documents *what it guards* by putting
///    QCLUSTER_GUARDED_BY(mu_) on each guarded field (never a bare comment);
///  - lock-free atomics are exempt — they are their own synchronization and
///    carry a comment naming the protocol instead;
///  - QCLUSTER_NO_THREAD_SAFETY_ANALYSIS is reserved for the mutex facade's
///    own implementation and must not appear outside src/common/mutex.h.

#if defined(__clang__)
#define QCLUSTER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QCLUSTER_THREAD_ANNOTATION(x)  // No-op outside Clang.
#endif

/// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define QCLUSTER_CAPABILITY(x) QCLUSTER_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define QCLUSTER_SCOPED_CAPABILITY QCLUSTER_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define QCLUSTER_GUARDED_BY(x) QCLUSTER_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define QCLUSTER_PT_GUARDED_BY(x) QCLUSTER_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it held).
#define QCLUSTER_REQUIRES(...) \
  QCLUSTER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define QCLUSTER_ACQUIRE(...) \
  QCLUSTER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define QCLUSTER_RELEASE(...) \
  QCLUSTER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the capability; holds it iff it returned `ret`.
#define QCLUSTER_TRY_ACQUIRE(ret, ...) \
  QCLUSTER_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must be called *without* the capability held (non-reentrancy).
#define QCLUSTER_EXCLUDES(...) \
  QCLUSTER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a fixed acquisition order between capabilities (deadlock check).
#define QCLUSTER_ACQUIRED_BEFORE(...) \
  QCLUSTER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define QCLUSTER_ACQUIRED_AFTER(...) \
  QCLUSTER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define QCLUSTER_RETURN_CAPABILITY(x) \
  QCLUSTER_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Reserved for the mutex
/// facade implementation (whose bodies manipulate the untracked std
/// primitives) — see the house rules above.
#define QCLUSTER_NO_THREAD_SAFETY_ANALYSIS \
  QCLUSTER_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // QCLUSTER_COMMON_ANNOTATIONS_H_
