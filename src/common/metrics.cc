#include "common/metrics.h"

// Pulled in for its QCLUSTER_LOG_LEVEL startup hook: any binary that links
// the metrics machinery (everything that touches the engine or an index)
// thereby honors both environment variables, even when none of its own
// translation units include logging.h.
#include "common/logging.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/mutex.h"

namespace qcluster {
namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Formats a double with enough digits to round-trip while keeping the
/// JSON stable across runs of the same data.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AtomicDoubleAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMin(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMax(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::BucketUpperEdge(int i) {
  return kMinValue *
         std::exp2(static_cast<double>(i + 1) / kBucketsPerOctave);
}

int Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // Also catches NaN and negatives.
  const int idx = static_cast<int>(
      std::ceil(std::log2(value / kMinValue) * kBucketsPerOctave)) - 1;
  return std::clamp(idx, 0, kNumBuckets - 1);
}

void Histogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  const long long before = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicDoubleAdd(sum_, value);
  if (before == 0) {
    // First sample: seed min/max so the CAS loops converge to it. Racy
    // concurrent first samples still end up with correct extrema because
    // both run the min and max loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  AtomicDoubleMin(min_, value);
  AtomicDoubleMax(max_, value);
}

double Histogram::Percentile(double q, long long count, double min,
                             double max) const {
  if (count <= 0) return 0.0;
  const long long target = std::max<long long>(
      1, static_cast<long long>(std::ceil(q * static_cast<double>(count))));
  long long cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const long long in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (cumulative + in_bucket >= target) {
      // Interpolate the target rank's position within the bucket in log
      // space (the buckets are geometric, so log space is where mass is
      // uniform under the bucketing's own resolution), clamped to the
      // observed range so single-sample and edge buckets stay exact.
      const double hi = BucketUpperEdge(i);
      const double lo = i == 0 ? kMinValue : BucketUpperEdge(i - 1);
      const double frac = in_bucket <= 0
                              ? 1.0
                              : (static_cast<double>(target - cumulative)) /
                                    static_cast<double>(in_bucket);
      return std::clamp(lo * std::pow(hi / lo, frac), min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = Percentile(0.50, snap.count, snap.min, snap.max);
  snap.p95 = Percentile(0.95, snap.count, snap.min, snap.max);
  snap.p99 = Percentile(0.99, snap.count, snap.min, snap.max);
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::shared_ptr<Counter> MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_shared<Counter>())
             .first;
  }
  return it->second;
}

std::shared_ptr<Gauge> MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_shared<Gauge>()).first;
  }
  return it->second;
}

std::shared_ptr<Histogram> MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_shared<Histogram>())
             .first;
  }
  return it->second;
}

long long MetricsRegistry::CounterValue(std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::optional<double> MetricsRegistry::GaugeValue(
    std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second->value();
}

std::optional<Histogram::Snapshot> MetricsRegistry::HistogramSnapshot(
    std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return std::nullopt;
  return it->second->snapshot();
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  out << "{\"schema\": \"qcluster.metrics.v1\"";

  out << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ", ") << '"' << EscapeJson(name)
        << "\": " << counter->value();
    first = false;
  }
  out << "}";

  out << ", \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ", ") << '"' << EscapeJson(name)
        << "\": " << FormatDouble(gauge->value());
    first = false;
  }
  out << "}";

  out << ", \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->snapshot();
    out << (first ? "" : ", ") << '"' << EscapeJson(name) << "\": {"
        << "\"count\": " << s.count << ", \"sum\": " << FormatDouble(s.sum)
        << ", \"min\": " << FormatDouble(s.min)
        << ", \"max\": " << FormatDouble(s.max)
        << ", \"p50\": " << FormatDouble(s.p50)
        << ", \"p95\": " << FormatDouble(s.p95)
        << ", \"p99\": " << FormatDouble(s.p99) << "}";
    first = false;
  }
  out << "}}";
  return out.str();
}

Status MetricsRegistry::DumpMetrics(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics dump file: " + path);
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) return Status::Internal("short write to metrics dump: " + path);
  return Status::OK();
}

void MetricsRegistry::DumpMetricsToStderr() const {
  std::fprintf(stderr, "%s\n", ToJson().c_str());
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void MetricAdd(std::string_view name, long long delta) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().counter(name)->Add(delta);
}

void MetricGauge(std::string_view name, double value) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().gauge(name)->Set(value);
}

void MetricRecord(std::string_view name, double value) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().histogram(name)->Record(value);
}

namespace internal {

/// Parses QCLUSTER_METRICS and registers the exit dump. Lives in the
/// library (rather than in user code) so any binary honors the variable
/// without changes.
bool InitMetricsFromEnv() {
  static const bool applied = [] {
    const char* spec = std::getenv("QCLUSTER_METRICS");
    if (spec == nullptr || spec[0] == '\0') return false;
    SetMetricsEnabled(true);
    static std::string g_dump_target;  // Outlives the atexit handler.
    g_dump_target = spec;
    std::atexit([] {
      if (g_dump_target == "stderr") {
        MetricsRegistry::Global().DumpMetricsToStderr();
        return;
      }
      const Status status =
          MetricsRegistry::Global().DumpMetrics(g_dump_target);
      if (!status.ok()) {
        std::fprintf(stderr, "qcluster: metrics dump failed: %s\n",
                     status.ToString().c_str());
      }
    });
    return true;
  }();
  return applied;
}

}  // namespace internal

}  // namespace qcluster
