#ifndef QCLUSTER_COMMON_LOGGING_H_
#define QCLUSTER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace qcluster {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted to stderr. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Applies QCLUSTER_LOG_LEVEL from the environment; idempotent. The inline
/// variable below references it from every translation unit that includes
/// this header, so the initializer survives static-library linking even in
/// binaries that never call a symbol from logging.cc.
bool InitLoggingFromEnv();
inline const bool kLoggingEnvApplied = InitLoggingFromEnv();

/// Stream-style log sink that emits a line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// No-op sink used when the message is below the configured level.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace qcluster

/// Usage: QCLUSTER_LOG(kInfo) << "built index with " << n << " entries";
/// Arguments are not evaluated when the severity is below the configured
/// minimum level.
#define QCLUSTER_LOG(severity)                                        \
  if (::qcluster::LogLevel::severity < ::qcluster::GetLogLevel()) {   \
  } else /* NOLINT */                                                 \
    ::qcluster::internal::LogMessage(::qcluster::LogLevel::severity,  \
                                     __FILE__, __LINE__)

#endif  // QCLUSTER_COMMON_LOGGING_H_
