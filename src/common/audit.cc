#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace qcluster {
namespace {

std::atomic<bool> g_audit_enabled{false};

}  // namespace

bool AuditEnabled() {
  return g_audit_enabled.load(std::memory_order_relaxed);
}

void SetAuditEnabled(bool enabled) {
  g_audit_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

void ReportAuditViolation(const Status& status, const char* file, int line) {
  // Counted unconditionally (not gated by MetricsEnabled): the whole point
  // of `audit.violations` is that a clean audited run can assert it is 0.
  MetricsRegistry::Global().counter("audit.violations")->Add(1);
  internal::LogMessage(LogLevel::kError, file, line)
      << "audit violation: " << status.ToString();
}

bool InitAuditFromEnv() {
  static const bool applied = [] {
    const char* spec = std::getenv("QCLUSTER_AUDIT");
    if (spec == nullptr || spec[0] == '\0') return false;
    if (std::strcmp(spec, "0") == 0 || std::strcmp(spec, "off") == 0) {
      return false;
    }
    SetAuditEnabled(true);
    return true;
  }();
  return applied;
}

}  // namespace internal
}  // namespace qcluster
