#ifndef QCLUSTER_COMMON_MUTEX_H_
#define QCLUSTER_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace qcluster {

/// The library's annotated mutex: a thin facade over std::mutex that carries
/// the Clang thread-safety capability attributes. Every lock in the library
/// is one of these — never a bare std::mutex — so the compiler can prove the
/// locking discipline of each guarded field (see common/annotations.h).
///
/// Locking goes through MutexLock (RAII) in all but exceptional cases;
/// Lock/Unlock are public for the rare manual sequence and for tests.
class QCLUSTER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the mutex is acquired.
  void Lock() QCLUSTER_ACQUIRE() QCLUSTER_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock();
  }

  /// Releases the mutex; the caller must hold it.
  void Unlock() QCLUSTER_RELEASE() QCLUSTER_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }

  /// Acquires the mutex iff it is free; returns whether it was acquired.
  [[nodiscard]] bool TryLock()
      QCLUSTER_TRY_ACQUIRE(true) QCLUSTER_NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  ///< Wait() needs the native handle to sleep on.

  std::mutex mu_;
};

/// RAII lock for a Mutex: acquires in the constructor, releases in the
/// destructor. SCOPED_CAPABILITY makes the analysis treat the object's
/// lifetime as the critical section.
class QCLUSTER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QCLUSTER_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() QCLUSTER_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait takes the Mutex explicitly so
/// the analysis can check the caller holds it; there is deliberately no
/// predicate overload — a predicate lambda is a separate function to the
/// analysis and cannot see the lock, so waits are written as explicit loops:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps until notified, and reacquires `mu`
  /// before returning. Spurious wakeups happen; always wait in a loop.
  void Wait(Mutex& mu) QCLUSTER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's MutexLock.
  }

  /// Like Wait but gives up after `timeout`; returns false on timeout,
  /// true when notified (or spuriously woken) in time. `mu` is reacquired
  /// before returning either way.
  [[nodiscard]] bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      QCLUSTER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Wakes one waiter / all waiters. May be called with or without the
  /// associated mutex held.
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qcluster

#endif  // QCLUSTER_COMMON_MUTEX_H_
