#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "common/trace.h"

namespace qcluster {

namespace internal {

int ParseThreadCount(const char* env) {
  if (env != nullptr && *env != '\0') {
    const int value = std::atoi(env);
    if (value >= 1) return std::min(value, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace internal

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::ShardCount(std::size_t n, std::size_t min_shard) const {
  if (n == 0) return 1;
  min_shard = std::max<std::size_t>(min_shard, 1);
  const std::size_t by_size = n / min_shard;  // Shards of >= min_shard items.
  const std::size_t shards =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), by_size);
  return static_cast<int>(std::max<std::size_t>(1, shards));
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t min_shard,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const int shards = ShardCount(n, min_shard);
  if (shards == 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t chunk =
      (n + static_cast<std::size_t>(shards) - 1) /
      static_cast<std::size_t>(shards);

  struct Completion {
    Mutex mu;
    CondVar cv;
    int remaining QCLUSTER_GUARDED_BY(mu) = 0;
  } done;
  {
    MutexLock lock(done.mu);
    done.remaining = shards - 1;
  }

  // Workers record their shard spans against the submitting thread's trace
  // context, parented to the span active here at submission time.
  const trace::PropagatedContext trace_ctx = trace::CaptureContext();
  {
    MutexLock lock(mu_);
    QCLUSTER_CHECK_MSG(!stop_, "ParallelFor on a destroyed pool");
    for (int s = 1; s < shards; ++s) {
      const std::size_t begin = static_cast<std::size_t>(s) * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      queue_.push_back([&fn, &done, trace_ctx, s, begin, end] {
        {
          trace::ScopedWorkerSpan shard_span(trace_ctx, s);
          if (begin < end) fn(s, begin, end);
        }
        MutexLock done_lock(done.mu);
        if (--done.remaining == 0) done.cv.NotifyOne();
      });
    }
  }
  cv_.NotifyAll();
  {
    trace::ScopedWorkerSpan shard_span(trace_ctx, 0);
    fn(0, 0, std::min(n, chunk));
  }
  MutexLock lock(done.mu);
  while (done.remaining != 0) done.cv.Wait(done.mu);
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: worker threads must outlive every static-duration
  // index, and thread joins in static destructors are deadlock-prone. The
  // QCLUSTER_THREADS read is deliberately lazy rather than anchored in a
  // header: it runs at first pool use inside this function-local static, so
  // there is no static-init ordering for an anchor to fix, and an eager
  // header anchor would spin up workers in every binary linking this file.
  static ThreadPool* const pool = [] {
    // qlint: allow(env-hook): lazy, function-local static; no init hazard
    const char* const env = std::getenv("QCLUSTER_THREADS");
    return new ThreadPool(internal::ParseThreadCount(env));
  }();
  return *pool;
}

}  // namespace qcluster
