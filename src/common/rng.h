#ifndef QCLUSTER_COMMON_RNG_H_
#define QCLUSTER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace qcluster {

/// Deterministic pseudo-random number generator used throughout the library.
///
/// Experiments in the paper are Monte Carlo averages over randomized
/// workloads; reproducibility of every figure requires a seeded, stable
/// generator that does not depend on the standard library's unspecified
/// distribution algorithms. The core is xoshiro256++, a small, fast,
/// well-tested generator; Gaussian variates use the Marsaglia polar method.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Returns a standard normal N(0, 1) variate.
  double Gaussian();

  /// Returns a normal N(mean, stddev^2) variate.
  double Gaussian(double mean, double stddev);

  /// Returns a vector of `n` i.i.d. standard normal variates.
  std::vector<double> GaussianVector(int n);

  /// Shuffles `items` in place with the Fisher-Yates algorithm.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace qcluster

#endif  // QCLUSTER_COMMON_RNG_H_
