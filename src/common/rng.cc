#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace qcluster {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  QCLUSTER_CHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  QCLUSTER_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: produces two independent variates per round.
  double u, v, s;
  do {
    u = 2.0 * Uniform() - 1.0;
    v = 2.0 * Uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  QCLUSTER_CHECK(stddev >= 0.0);
  return mean + stddev * Gaussian();
}

std::vector<double> Rng::GaussianVector(int n) {
  QCLUSTER_CHECK(n >= 0);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (double& x : out) x = Gaussian();
  return out;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  QCLUSTER_CHECK(0 <= k && k <= n);
  // Floyd's algorithm would avoid the O(n) init, but n is small in all of
  // our uses; a partial Fisher-Yates is simpler and still exact.
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        i + static_cast<int>(UniformInt(static_cast<std::uint64_t>(n - i))));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

}  // namespace qcluster
