#ifndef QCLUSTER_COMMON_METRICS_H_
#define QCLUSTER_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace qcluster {

/// Process-wide observability for the feedback loop: named monotonic
/// counters, gauges, and latency histograms, collected into a single
/// registry and exported as JSON. Collection is gated by a global enable
/// flag (off by default) so the un-instrumented fast path costs one relaxed
/// atomic load per site; compiling with -DQCLUSTER_DISABLE_METRICS removes
/// the timer macro entirely.
///
/// Enablement happens either programmatically (SetMetricsEnabled) or via
/// the environment, parsed at process start next to QCLUSTER_LOG_LEVEL:
///
///   QCLUSTER_METRICS=stderr           collect, dump JSON to stderr at exit
///   QCLUSTER_METRICS=/path/to/m.json  collect, dump JSON to the file at exit

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(long long delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// A last-value-wins instantaneous measurement.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A histogram over fixed log-scale buckets (4 buckets per octave starting
/// at 1 ns), suitable for latencies in seconds and for counts. Recording is
/// lock-free; percentiles are estimated from the bucket the quantile falls
/// in (geometric bucket midpoint, clamped to the observed min/max — the
/// estimate is within one bucket ratio, ~19%, of the true value).
class Histogram {
 public:
  /// Bucket i covers (kMinValue·r^(i-1), kMinValue·r^i] with r = 2^(1/4).
  /// 192 buckets span 1e-9 .. ~2.8e5 (nanoseconds to ~3 days in seconds).
  static constexpr int kNumBuckets = 192;
  static constexpr int kBucketsPerOctave = 4;
  static constexpr double kMinValue = 1e-9;

  void Record(double value);

  struct Snapshot {
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot snapshot() const;

  /// Upper edge of bucket `i` (exposed for tests).
  static double BucketUpperEdge(int i);
  /// Bucket index a value lands in (exposed for tests).
  static int BucketIndex(double value);

 private:
  double Percentile(double q, long long count, double min, double max) const;

  // Deliberately lock-free (recording sits on the search hot path): the
  // counts are relaxed fetch_adds, and sum/min/max are maintained by the CAS
  // loops in metrics.cc. No GUARDED_BY applies — the atomics are their own
  // synchronization; snapshot() tolerates torn cross-field views.
  std::atomic<long long> buckets_[kNumBuckets] = {};
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Owner of every named metric. Metric objects are shared-owned: the
/// registry holds one reference and every handed-out handle holds its own,
/// so cached handles stay valid (recording into a detached object) even
/// across Reset. Call sites may therefore cache the returned handles for
/// the process lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumentation.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. Thread-safe; the handle co-owns the metric, so it
  /// outlives Reset (a reset detaches it from the registry's exports but
  /// never dangles).
  std::shared_ptr<Counter> counter(std::string_view name);
  std::shared_ptr<Gauge> gauge(std::string_view name);
  std::shared_ptr<Histogram> histogram(std::string_view name);

  /// Read access for tests and exporters. nullopt / 0 when the metric has
  /// never been touched.
  long long CounterValue(std::string_view name) const;
  std::optional<double> GaugeValue(std::string_view name) const;
  std::optional<Histogram::Snapshot> HistogramSnapshot(
      std::string_view name) const;

  /// Drops every metric (test isolation and bench run boundaries).
  void Reset();

  /// Serializes all metrics to a stable, alphabetically ordered JSON
  /// document:
  ///   {"schema": "qcluster.metrics.v1",
  ///    "counters": {name: integer, ...},
  ///    "gauges": {name: number, ...},
  ///    "histograms": {name: {"count": n, "sum": s, "min": m, "max": M,
  ///                          "p50": v, "p95": v, "p99": v}, ...}}
  std::string ToJson() const;

  /// Writes ToJson() (plus a trailing newline) to `path`.
  [[nodiscard]] Status DumpMetrics(const std::string& path) const;

  /// Writes ToJson() to stderr.
  void DumpMetricsToStderr() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Counter>, std::less<>> counters_
      QCLUSTER_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Gauge>, std::less<>> gauges_
      QCLUSTER_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<Histogram>, std::less<>> histograms_
      QCLUSTER_GUARDED_BY(mu_);
};

/// Global collection switch. Off by default; flipped by QCLUSTER_METRICS or
/// explicitly (bench harness, tests, --metrics flags).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {

/// Applies QCLUSTER_METRICS from the environment and registers the exit
/// dump; idempotent. Referenced from the inline variable below so the
/// initializer survives static-library linking in every binary that
/// includes this header.
bool InitMetricsFromEnv();
inline const bool kMetricsEnvApplied = InitMetricsFromEnv();

}  // namespace internal

/// Gated instrumentation helpers: no-ops (beyond one relaxed atomic load)
/// while metrics are disabled.
void MetricAdd(std::string_view name, long long delta = 1);
void MetricGauge(std::string_view name, double value);
void MetricRecord(std::string_view name, double value);

/// RAII timer recording its scope's wall time (seconds) into the named
/// histogram. Skips the clock reads entirely while metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : name_(MetricsEnabled() ? name : nullptr) {
    if (name_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (name_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      MetricRecord(name_,
                   std::chrono::duration<double>(elapsed).count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace qcluster

/// Times the rest of the enclosing scope into histogram `name`.
/// Usage: QCLUSTER_TIMED("feedback.classify");
#ifdef QCLUSTER_DISABLE_METRICS
#define QCLUSTER_TIMED(name)
#else
#define QCLUSTER_TIMED_CONCAT2(a, b) a##b
#define QCLUSTER_TIMED_CONCAT(a, b) QCLUSTER_TIMED_CONCAT2(a, b)
#define QCLUSTER_TIMED(name)                 \
  ::qcluster::ScopedTimer QCLUSTER_TIMED_CONCAT(qcluster_scoped_timer_, \
                                                __COUNTER__)(name)
#endif

#endif  // QCLUSTER_COMMON_METRICS_H_
