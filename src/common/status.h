#ifndef QCLUSTER_COMMON_STATUS_H_
#define QCLUSTER_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace qcluster {

/// Error categories used across the library. Mirrors the subset of
/// canonical codes the library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kSingularMatrix,
  kNotConverged,
};

/// Returns a human readable name for a status code ("OK", "InvalidArgument"...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error result used by all fallible operations in
/// the library (matrix inversion, quantile evaluation, query validation, ...).
///
/// The library does not use exceptions; functions that can fail return a
/// `Status` or a `Result<T>`. Programming errors (contract violations) abort
/// via the QCLUSTER_CHECK macros instead.
///
/// The class itself is [[nodiscard]], so a call site that drops a returned
/// Status on the floor is a compile error under -Werror=unused-result (on by
/// default — see the root CMakeLists). The rare operation whose failure is
/// genuinely acceptable routes through IgnoreError below with a comment
/// naming why; everything else handles or propagates
/// (QCLUSTER_RETURN_IF_ERROR / QCLUSTER_CHECK_OK).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status SingularMatrix(std::string msg) {
    return Status(StatusCode::kSingularMatrix, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "<CodeName>: <message>" or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Access to the value when holding an error is a
/// checked contract violation. [[nodiscard]] for the same reason as Status:
/// an ignored Result is an ignored error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value; a Result is conceptually "a T,
  /// unless something went wrong".
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)) {}

  /// Implicit construction from an error status. The status must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  /// Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Aborts the process reporting an attempted access to an errored Result.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!value_.has_value()) internal::DieOnBadResultAccess(status_);
}

/// The explicit discard helpers for the [[nodiscard]] error contract. House
/// rule: every call carries a comment naming why dropping the error (or the
/// value) is correct at that site — the helpers exist so intentional drops
/// are greppable and reviewed, not silent.
inline void IgnoreError(const Status&) {}
template <typename T>
inline void IgnoreError(const Result<T>&) {}

/// Generic form for non-Status [[nodiscard]] values computed only for their
/// side effects (e.g. a Search run purely to fill SearchStats).
template <typename T>
inline void DiscardResult(T&&) {}

/// Propagates an error status from an expression returning `Status`.
#define QCLUSTER_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::qcluster::Status qcluster_status_tmp_ = (expr);   \
    if (!qcluster_status_tmp_.ok()) return qcluster_status_tmp_; \
  } while (false)

}  // namespace qcluster

#endif  // QCLUSTER_COMMON_STATUS_H_
