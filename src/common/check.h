#ifndef QCLUSTER_COMMON_CHECK_H_
#define QCLUSTER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace qcluster::internal {

/// Aborts the process after printing the failed condition and location.
[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line, const char* message) {
  std::fprintf(stderr, "QCLUSTER_CHECK failed: %s at %s:%d%s%s\n", condition,
               file, line, message[0] ? " — " : "", message);
  std::abort();
}

}  // namespace qcluster::internal

/// Aborts on contract violations. Enabled in all build modes: the library
/// deals with numerical code where silently continuing after a violated
/// precondition produces garbage results that are far harder to debug than a
/// crash with a location.
#define QCLUSTER_CHECK(condition)                                      \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::qcluster::internal::CheckFailed(#condition, __FILE__, __LINE__, \
                                        "");                           \
    }                                                                  \
  } while (false)

/// Like QCLUSTER_CHECK but with an explanatory message literal.
#define QCLUSTER_CHECK_MSG(condition, message)                          \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::qcluster::internal::CheckFailed(#condition, __FILE__, __LINE__, \
                                        (message));                    \
    }                                                                   \
  } while (false)

/// Checks that a Status-returning expression succeeded.
#define QCLUSTER_CHECK_OK(expr)                                          \
  do {                                                                   \
    ::qcluster::Status qcluster_check_status_ = (expr);                  \
    if (!qcluster_check_status_.ok()) {                                  \
      ::qcluster::internal::CheckFailed(                                 \
          #expr, __FILE__, __LINE__,                                     \
          qcluster_check_status_.ToString().c_str());                    \
    }                                                                    \
  } while (false)

namespace qcluster {

/// Whether QCLUSTER_AUDIT sites run their validators. Off by default even
/// in Debug (the algebraic audits cost up to O(d³) per call site); flipped
/// by the QCLUSTER_AUDIT=1 environment variable at process start or
/// programmatically (tests, bench harness). Has no effect in Release
/// builds, where the audit sites compile to nothing.
bool AuditEnabled();
void SetAuditEnabled(bool enabled);

namespace internal {

/// Records one failed runtime audit: logs the violated invariant (the
/// Status message names the paper equation) with its call site and bumps
/// the `audit.violations` counter in the global metrics registry. Audits
/// report instead of aborting — a violated algebraic invariant usually
/// means a tolerance or numerical issue worth surfacing in bulk, not a
/// corrupted process.
void ReportAuditViolation(const Status& status, const char* file, int line);

/// Applies QCLUSTER_AUDIT from the environment; idempotent. Anchored by the
/// inline variable below so static-library linking keeps the initializer in
/// every binary that includes this header.
bool InitAuditFromEnv();
inline const bool kAuditEnvApplied = InitAuditFromEnv();

}  // namespace internal
}  // namespace qcluster

/// Debug-only contract check: QCLUSTER_CHECK in Debug builds, fully
/// compiled out (condition not evaluated) under NDEBUG. `sizeof` keeps the
/// condition type-checked and its operands "used" in Release without
/// generating code.
#ifndef NDEBUG
#define QCLUSTER_DCHECK(condition) QCLUSTER_CHECK(condition)
#define QCLUSTER_DCHECK_MSG(condition, message) \
  QCLUSTER_CHECK_MSG(condition, message)
#else
#define QCLUSTER_DCHECK(condition) \
  do {                             \
    (void)sizeof(!(condition));    \
  } while (false)
#define QCLUSTER_DCHECK_MSG(condition, message) \
  do {                                          \
    (void)sizeof(!(condition));                 \
    (void)sizeof(message);                      \
  } while (false)
#endif

/// Runtime invariant audit: evaluates a Status-returning validator
/// expression and reports a violation (log + `audit.violations` counter)
/// when it is not OK. Active only in Debug builds *and* when
/// qcluster::AuditEnabled() — the validator expression is never evaluated
/// otherwise; Release builds compile the whole site to nothing.
#ifndef NDEBUG
#define QCLUSTER_AUDIT(expr)                                          \
  do {                                                                \
    if (::qcluster::AuditEnabled()) {                                 \
      const ::qcluster::Status qcluster_audit_status_ = (expr);       \
      if (!qcluster_audit_status_.ok()) {                             \
        ::qcluster::internal::ReportAuditViolation(                   \
            qcluster_audit_status_, __FILE__, __LINE__);              \
      }                                                               \
    }                                                                 \
  } while (false)
#else
#define QCLUSTER_AUDIT(expr) \
  do {                       \
  } while (false)
#endif

#endif  // QCLUSTER_COMMON_CHECK_H_
