#ifndef QCLUSTER_COMMON_CHECK_H_
#define QCLUSTER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace qcluster::internal {

/// Aborts the process after printing the failed condition and location.
[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line, const char* message) {
  std::fprintf(stderr, "QCLUSTER_CHECK failed: %s at %s:%d%s%s\n", condition,
               file, line, message[0] ? " — " : "", message);
  std::abort();
}

}  // namespace qcluster::internal

/// Aborts on contract violations. Enabled in all build modes: the library
/// deals with numerical code where silently continuing after a violated
/// precondition produces garbage results that are far harder to debug than a
/// crash with a location.
#define QCLUSTER_CHECK(condition)                                      \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::qcluster::internal::CheckFailed(#condition, __FILE__, __LINE__, \
                                        "");                           \
    }                                                                  \
  } while (false)

/// Like QCLUSTER_CHECK but with an explanatory message literal.
#define QCLUSTER_CHECK_MSG(condition, message)                          \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::qcluster::internal::CheckFailed(#condition, __FILE__, __LINE__, \
                                        (message));                    \
    }                                                                   \
  } while (false)

/// Checks that a Status-returning expression succeeded.
#define QCLUSTER_CHECK_OK(expr)                                          \
  do {                                                                   \
    ::qcluster::Status qcluster_check_status_ = (expr);                  \
    if (!qcluster_check_status_.ok()) {                                  \
      ::qcluster::internal::CheckFailed(                                 \
          #expr, __FILE__, __LINE__,                                     \
          qcluster_check_status_.ToString().c_str());                    \
    }                                                                    \
  } while (false)

#endif  // QCLUSTER_COMMON_CHECK_H_
