#ifndef QCLUSTER_COMMON_THREAD_POOL_H_
#define QCLUSTER_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace qcluster {

/// A fixed-size pool of worker threads for sharded scans.
///
/// The pool exists to parallelize the k-NN scoring hot path: an index splits
/// its point range into contiguous shards, each shard is scored into its own
/// bounded top-k heap, and the per-shard heaps are merged on the calling
/// thread. Shard *boundaries* depend only on (n, min_shard, thread_count),
/// never on scheduling, and every point is scored independently — so results
/// are bit-identical at any thread count.
///
/// A pool of size 1 owns no worker threads at all: ParallelFor runs the
/// single shard inline on the caller, giving a fully serial, deterministic
/// execution for debugging (`QCLUSTER_THREADS=1`).
///
/// ParallelFor must not be called from inside a pool task (no nesting); the
/// library only issues it from user-facing search entry points.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining thread).
  /// Values below 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency, including the calling thread.
  int thread_count() const { return threads_; }

  /// Number of shards ParallelFor uses for `n` items: at most
  /// thread_count(), and never so many that a shard holds fewer than
  /// `min_shard` items (small inputs stay single-sharded — the parallel
  /// bookkeeping would cost more than it saves).
  [[nodiscard]] int ShardCount(std::size_t n, std::size_t min_shard) const;

  /// Splits [0, n) into ShardCount contiguous equal shards and runs
  /// `fn(shard, begin, end)` for each, blocking until all complete. Shard 0
  /// runs on the calling thread, the rest on pool workers. `fn` must be
  /// safe to invoke concurrently and must not throw.
  void ParallelFor(std::size_t n, std::size_t min_shard,
                   const std::function<void(int, std::size_t, std::size_t)>&
                       fn);

  /// The process-wide pool every index uses by default, sized by the
  /// QCLUSTER_THREADS environment variable at first use (default:
  /// std::thread::hardware_concurrency, 1 = fully serial).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  const int threads_;
  // qlint: unguarded(ctor-filled before any worker runs; joined in dtor)
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ QCLUSTER_GUARDED_BY(mu_);
  bool stop_ QCLUSTER_GUARDED_BY(mu_) = false;
};

namespace internal {

/// QCLUSTER_THREADS parsing, exposed for tests: a positive integer wins
/// (capped at 256); anything else falls back to hardware_concurrency
/// (minimum 1).
int ParseThreadCount(const char* env);

}  // namespace internal
}  // namespace qcluster

#endif  // QCLUSTER_COMMON_THREAD_POOL_H_
