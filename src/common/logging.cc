#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qcluster {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

/// Applies QCLUSTER_LOG_LEVEL=debug|info|warning|error so verbosity is
/// controllable without code changes. Unknown values are reported once and
/// ignored.
bool InitLoggingFromEnv() {
  static const bool applied = [] {
    const char* level = std::getenv("QCLUSTER_LOG_LEVEL");
    if (level == nullptr || level[0] == '\0') return false;
    if (std::strcmp(level, "debug") == 0) {
      SetLogLevel(LogLevel::kDebug);
    } else if (std::strcmp(level, "info") == 0) {
      SetLogLevel(LogLevel::kInfo);
    } else if (std::strcmp(level, "warning") == 0) {
      SetLogLevel(LogLevel::kWarning);
    } else if (std::strcmp(level, "error") == 0) {
      SetLogLevel(LogLevel::kError);
    } else {
      std::fprintf(stderr,
                   "qcluster: ignoring unknown QCLUSTER_LOG_LEVEL '%s' "
                   "(expected debug|info|warning|error)\n",
                   level);
    }
    return true;
  }();
  return applied;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  (void)level_;
}

}  // namespace internal
}  // namespace qcluster
