#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/mutex.h"

namespace qcluster::trace {
namespace {

std::atomic<bool> g_tracing_enabled{false};
std::atomic<double> g_slow_round_ms{0.0};
std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<int> g_next_thread_index{0};

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Thread-local cursor the span nesting runs on: the context of the round
/// in flight and the innermost live span (the parent of any new span).
struct ThreadState {
  TraceContext context;
  std::uint64_t active_span = 0;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

/// Same stable formatting the metrics JSON uses.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendAttrValue(std::ostringstream& out, const AttrValue& v,
                     bool as_json) {
  switch (v.kind) {
    case AttrValue::Kind::kInt:
      out << v.i;
      break;
    case AttrValue::Kind::kDouble:
      out << FormatDouble(v.d);
      break;
    case AttrValue::Kind::kString:
      if (as_json) {
        out << '"' << EscapeJson(v.s != nullptr ? v.s : "") << '"';
      } else {
        out << (v.s != nullptr ? v.s : "");
      }
      break;
    case AttrValue::Kind::kNone:
      out << "null";
      break;
  }
}

double DurationMs(const SpanRecord& rec) {
  return static_cast<double>(rec.end_ns - rec.begin_ns) / 1e6;
}

/// Sorted traversal order: begin time, span id as the deterministic
/// tiebreak (ids are unique).
std::vector<std::size_t> SortedOrder(const std::vector<SpanRecord>& spans) {
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&spans](std::size_t a, std::size_t b) {
              if (spans[a].begin_ns != spans[b].begin_ns) {
                return spans[a].begin_ns < spans[b].begin_ns;
              }
              return spans[a].span_id < spans[b].span_id;
            });
  return order;
}

/// Emits the round's summary line and, past the slow threshold, its full
/// span tree — called by the owning ScopedTraceContext as it closes.
void EmitRoundEnd(std::uint64_t trace_id, int round, double elapsed_ms) {
  TraceRecorder& recorder = TraceRecorder::Global();
  QCLUSTER_LOG(kInfo) << recorder.RoundSummary(trace_id, round);
  const double slow_ms = SlowRoundThresholdMs();
  if (slow_ms > 0.0 && elapsed_ms >= slow_ms) {
    const std::vector<SpanRecord> spans =
        recorder.SpansForRound(trace_id, round);
    std::fprintf(stderr,
                 "qcluster: SLOW round: %.3f ms >= QCLUSTER_SLOW_MS=%.3f "
                 "(trace=%llu round=%d)\n%s",
                 elapsed_ms, slow_ms,
                 static_cast<unsigned long long>(trace_id), round,
                 TraceRecorder::FormatSpanTree(spans).c_str());
  }
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

double SlowRoundThresholdMs() {
  return g_slow_round_ms.load(std::memory_order_relaxed);
}

void SetSlowRoundThresholdMs(double ms) {
  g_slow_round_ms.store(ms, std::memory_order_relaxed);
}

std::uint64_t NewTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext CurrentContext() { return State().context; }

void ScopedSpan::Begin(const char* name) {
  ThreadState& ts = State();
  rec_.name = name;
  rec_.trace_id = ts.context.trace_id;
  rec_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  rec_.parent_id = ts.active_span;
  rec_.round = ts.context.round;
  rec_.thread_index = internal::LocalBuffer().thread_index();
  rec_.begin_ns = NowNs();
  rec_.end_ns = 0;
  rec_.attr_count = 0;
  ts.active_span = rec_.span_id;
  active_ = true;
}

void ScopedSpan::End() {
  rec_.end_ns = NowNs();
  // Scoped nesting is LIFO per thread, so the parent saved at Begin is
  // exactly the span to restore.
  State().active_span = rec_.parent_id;
  internal::LocalBuffer().Push(rec_);
  active_ = false;
}

void ScopedSpan::AddAttr(const char* key, long long value) {
  if (!active_ || rec_.attr_count >= SpanRecord::kMaxAttrs) return;
  rec_.attr_keys[rec_.attr_count] = key;
  rec_.attr_values[rec_.attr_count] =
      AttrValue{AttrValue::Kind::kInt, value, 0.0, nullptr};
  ++rec_.attr_count;
}

void ScopedSpan::AddAttr(const char* key, double value) {
  if (!active_ || rec_.attr_count >= SpanRecord::kMaxAttrs) return;
  rec_.attr_keys[rec_.attr_count] = key;
  rec_.attr_values[rec_.attr_count] =
      AttrValue{AttrValue::Kind::kDouble, 0, value, nullptr};
  ++rec_.attr_count;
}

void ScopedSpan::AddAttr(const char* key, const char* value) {
  if (!active_ || rec_.attr_count >= SpanRecord::kMaxAttrs) return;
  rec_.attr_keys[rec_.attr_count] = key;
  rec_.attr_values[rec_.attr_count] =
      AttrValue{AttrValue::Kind::kString, 0, 0.0, value};
  ++rec_.attr_count;
}

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id, int round) {
  if (!TracingEnabled() || trace_id == 0) return;
  ThreadState& ts = State();
  // A context already in flight wins: the engine nested inside a session
  // keeps recording into the session's (trace, round).
  if (ts.context.trace_id != 0) return;
  saved_ = ts.context;
  saved_span_ = ts.active_span;
  installed_ = TraceContext{trace_id, round};
  ts.context = installed_;
  ts.active_span = 0;
  begin_ns_ = NowNs();
  owner_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (!owner_) return;
  ThreadState& ts = State();
  ts.context = saved_;
  ts.active_span = saved_span_;
  const double elapsed_ms =
      static_cast<double>(NowNs() - begin_ns_) / 1e6;
  EmitRoundEnd(installed_.trace_id, installed_.round, elapsed_ms);
}

PropagatedContext CaptureContext() {
  PropagatedContext out;
  if (!TracingEnabled()) return out;
  const ThreadState& ts = State();
  out.active = true;
  out.context = ts.context;
  out.parent_span = ts.active_span;
  return out;
}

ScopedWorkerSpan::ScopedWorkerSpan(const PropagatedContext& ctx, int shard) {
  if (!ctx.active) return;
  ThreadState& ts = State();
  saved_ = ts.context;
  saved_span_ = ts.active_span;
  ts.context = ctx.context;
  ts.active_span = ctx.parent_span;
  active_ = true;
  span_.emplace("thread_pool.shard");
  span_->AddAttr("shard", static_cast<long long>(shard));
}

ScopedWorkerSpan::~ScopedWorkerSpan() {
  if (!active_) return;
  span_.reset();  // Ends the shard span before the context is torn down.
  ThreadState& ts = State();
  ts.context = saved_;
  ts.active_span = saved_span_;
}

namespace internal {

ThreadBuffer::ThreadBuffer()
    : thread_index_(g_next_thread_index.fetch_add(
          1, std::memory_order_relaxed)) {}

void ThreadBuffer::Push(const SpanRecord& rec) {
  MutexLock lock(mu_);
  if (ring_ == nullptr) {
    // Lazy: threads that never trace a span (and disabled-mode runs) never
    // allocate a ring.
    ring_ = std::make_unique<SpanRecord[]>(kCapacity);
  }
  ring_[static_cast<std::size_t>(next_)] = rec;
  next_ = (next_ + 1) % kCapacity;
  if (size_ < kCapacity) {
    ++size_;
  } else {
    ++dropped_;  // The slot just overwritten held the oldest record.
  }
}

void ThreadBuffer::DrainInto(std::vector<SpanRecord>* out) {
  MutexLock lock(mu_);
  const int start = (next_ - size_ + kCapacity) % kCapacity;
  for (int i = 0; i < size_; ++i) {
    out->push_back(ring_[static_cast<std::size_t>((start + i) % kCapacity)]);
  }
  size_ = 0;
}

long long ThreadBuffer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void ThreadBuffer::ResetDropped() {
  MutexLock lock(mu_);
  dropped_ = 0;
}

ThreadBuffer& LocalBuffer() {
  // The shared_ptr keeps the buffer alive in the recorder past thread
  // exit, so spans recorded by short-lived threads still drain.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>();
    TraceRecorder::Global().RegisterBuffer(created);
    return created;
  }();
  return *buffer;
}

bool InitTraceFromEnv() {
  static const bool applied = [] {
    bool any = false;
    const char* spec = std::getenv("QCLUSTER_TRACE");
    if (spec != nullptr && spec[0] != '\0') {
      SetTracingEnabled(true);
      static std::string g_dump_target;  // Outlives the atexit handler.
      g_dump_target = spec;
      std::atexit([] {
        TraceRecorder& recorder = TraceRecorder::Global();
        if (g_dump_target == "stderr") {
          std::fprintf(stderr, "%s\n",
                       recorder.ToChromeTraceJson().c_str());
          return;
        }
        const Status status = recorder.DumpChromeTrace(g_dump_target);
        if (!status.ok()) {
          std::fprintf(stderr, "qcluster: trace dump failed: %s\n",
                       status.ToString().c_str());
        }
      });
      any = true;
    }
    const char* slow = std::getenv("QCLUSTER_SLOW_MS");
    if (slow != nullptr && slow[0] != '\0') {
      const double ms = std::atof(slow);
      if (ms > 0.0) {
        SetTracingEnabled(true);
        SetSlowRoundThresholdMs(ms);
        any = true;
      }
    }
    return any;
  }();
  return applied;
}

}  // namespace internal

TraceRecorder& TraceRecorder::Global() {
  // Leaked intentionally: thread buffers may outlive main, and the atexit
  // trace dump must find the recorder alive.
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::RegisterBuffer(
    std::shared_ptr<internal::ThreadBuffer> buffer) {
  MutexLock lock(mu_);
  buffers_.push_back(std::move(buffer));
}

void TraceRecorder::Drain() {
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> drained;
  for (const auto& buffer : buffers) buffer->DrainInto(&drained);
  MutexLock lock(mu_);
  for (const SpanRecord& rec : drained) retained_.push_back(rec);
  while (retained_.size() > kMaxRetained) {
    retained_.pop_front();
    ++retained_dropped_;
  }
}

std::vector<SpanRecord> TraceRecorder::Snapshot() {
  Drain();
  MutexLock lock(mu_);
  return std::vector<SpanRecord>(retained_.begin(), retained_.end());
}

std::vector<SpanRecord> TraceRecorder::SpansForRound(std::uint64_t trace_id,
                                                     int round) {
  std::vector<SpanRecord> all = Snapshot();
  std::vector<SpanRecord> out;
  for (const SpanRecord& rec : all) {
    if (rec.trace_id == trace_id && (round < 0 || rec.round == round)) {
      out.push_back(rec);
    }
  }
  return out;
}

long long TraceRecorder::dropped() const {
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers;
  long long total = 0;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
    total = retained_dropped_;
  }
  for (const auto& buffer : buffers) total += buffer->dropped();
  return total;
}

void TraceRecorder::Reset() {
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers;
  {
    MutexLock lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> junk;
  for (const auto& buffer : buffers) {
    buffer->DrainInto(&junk);
    buffer->ResetDropped();
  }
  MutexLock lock(mu_);
  retained_.clear();
  retained_dropped_ = 0;
}

std::string TraceRecorder::ToChromeTraceJson() {
  std::vector<SpanRecord> spans = Snapshot();
  const std::vector<std::size_t> order = SortedOrder(spans);
  // Timestamps relative to the earliest span keep the export small and
  // stable in shape; chrome://tracing only needs consistency.
  const std::int64_t base =
      order.empty() ? 0 : spans[order.front()].begin_ns;
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t idx : order) {
    const SpanRecord& rec = spans[idx];
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"name\": \"" << EscapeJson(rec.name) << "\", "
        << "\"cat\": \"qcluster\", \"ph\": \"X\", "
        << "\"ts\": "
        << FormatDouble(static_cast<double>(rec.begin_ns - base) / 1e3)
        << ", \"dur\": "
        << FormatDouble(static_cast<double>(rec.end_ns - rec.begin_ns) /
                        1e3)
        << ", \"pid\": " << rec.trace_id
        << ", \"tid\": " << rec.thread_index << ", \"args\": {"
        << "\"span\": " << rec.span_id << ", \"parent\": " << rec.parent_id
        << ", \"round\": " << rec.round;
    for (int a = 0; a < rec.attr_count; ++a) {
      out << ", \"" << EscapeJson(rec.attr_keys[a]) << "\": ";
      AppendAttrValue(out, rec.attr_values[a], /*as_json=*/true);
    }
    out << "}}";
  }
  out << "\n]}";
  return out.str();
}

Status TraceRecorder::DumpChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace dump file: " + path);
  }
  const std::string json = ToChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) return Status::Internal("short write to trace dump: " + path);
  return Status::OK();
}

std::string TraceRecorder::RoundSummary(std::uint64_t trace_id, int round) {
  const std::vector<SpanRecord> spans = SpansForRound(trace_id, round);
  std::ostringstream out;
  out << "trace=" << trace_id << " round=" << round;
  if (spans.empty()) {
    out << " (no spans)";
    return out.str();
  }
  std::int64_t min_begin = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_end = std::numeric_limits<std::int64_t>::min();
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    min_begin = std::min(min_begin, spans[i].begin_ns);
    max_end = std::max(max_end, spans[i].end_ns);
    by_id.emplace(spans[i].span_id, i);
  }
  out << " total="
      << FormatDouble(static_cast<double>(max_end - min_begin) / 1e6)
      << "ms";

  // Phase breakdown: every span within two levels of the round's root(s),
  // aggregated by name (a span whose parent was dropped counts as a root).
  auto depth_of = [&by_id, &spans](const SpanRecord& rec) {
    int depth = 0;
    std::uint64_t parent = rec.parent_id;
    while (parent != 0 && depth <= 2) {
      const auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      ++depth;
      parent = spans[it->second].parent_id;
    }
    return depth;
  };
  struct Phase {
    std::int64_t first_begin;
    double sum_ms;
    long long count;
  };
  std::unordered_map<std::string, Phase> phases;
  for (std::size_t idx : SortedOrder(spans)) {
    const SpanRecord& rec = spans[idx];
    if (depth_of(rec) > 2) continue;
    const auto [it, inserted] =
        phases.emplace(rec.name, Phase{rec.begin_ns, 0.0, 0});
    it->second.sum_ms += DurationMs(rec);
    ++it->second.count;
  }
  std::vector<std::pair<std::string, Phase>> ordered(phases.begin(),
                                                     phases.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second.first_begin != b.second.first_begin) {
                return a.second.first_begin < b.second.first_begin;
              }
              return a.first < b.first;
            });
  for (const auto& [name, phase] : ordered) {
    out << " " << name << "=" << FormatDouble(phase.sum_ms) << "ms";
    if (phase.count > 1) out << "/" << phase.count;
  }
  out << " spans=" << spans.size();
  return out.str();
}

std::string TraceRecorder::FormatSpanTree(
    const std::vector<SpanRecord>& spans) {
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_id.emplace(spans[i].span_id, i);
  }
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;
  for (std::size_t idx : SortedOrder(spans)) {
    const SpanRecord& rec = spans[idx];
    if (rec.parent_id != 0 && by_id.contains(rec.parent_id)) {
      children[rec.parent_id].push_back(idx);
    } else {
      roots.push_back(idx);
    }
  }
  std::ostringstream out;
  const std::function<void(std::size_t, int)> print =
      [&](std::size_t idx, int depth) {
        const SpanRecord& rec = spans[idx];
        for (int i = 0; i < depth; ++i) out << "  ";
        out << rec.name << " " << FormatDouble(DurationMs(rec)) << "ms";
        if (depth == 0) {
          out << " trace=" << rec.trace_id << " round=" << rec.round;
        }
        out << " tid=" << rec.thread_index;
        if (rec.attr_count > 0) {
          out << " {";
          for (int a = 0; a < rec.attr_count; ++a) {
            out << (a > 0 ? " " : "") << rec.attr_keys[a] << "=";
            AppendAttrValue(out, rec.attr_values[a], /*as_json=*/false);
          }
          out << "}";
        }
        out << "\n";
        const auto it = children.find(rec.span_id);
        if (it != children.end()) {
          for (std::size_t child : it->second) print(child, depth + 1);
        }
      };
  for (std::size_t root : roots) print(root, 0);
  return out.str();
}

}  // namespace qcluster::trace
