#ifndef QCLUSTER_COMMON_TRACE_H_
#define QCLUSTER_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/status.h"

namespace qcluster::trace {

/// Per-query structured tracing for the feedback loop.
///
/// Where the metrics registry (common/metrics.h) aggregates — "the median
/// classify phase takes 0.2 ms" — tracing attributes wall time to the span
/// tree ONE request actually executed: this feedback round, on this trace,
/// spent 10.1 ms in the disjunctive k-NN, of which shard 3's scan was the
/// straggler. Spans carry a TraceContext (trace id + round id) that flows
/// RetrievalSession → QclusterEngine → classifier/merging → the index
/// implementations, and across ThreadPool::ParallelFor boundaries (worker
/// shard spans are parented to the submitting span).
///
/// Recording is lock-cheap: each thread owns a fixed-capacity ring buffer
/// (oldest span dropped on overflow, never blocking), drained on demand
/// into the bounded process-wide TraceRecorder. Collection is off by
/// default; while disabled a span site costs one relaxed atomic load and
/// no allocation. Compiling with -DQCLUSTER_DISABLE_METRICS removes the
/// span macros entirely (the same compile-to-nothing path as
/// QCLUSTER_TIMED).
///
/// Environment hooks, parsed at process start next to QCLUSTER_METRICS:
///
///   QCLUSTER_TRACE=stderr         collect; dump Chrome trace JSON to
///                                 stderr at exit
///   QCLUSTER_TRACE=/path/t.json   same, to the file (loadable in
///                                 chrome://tracing or https://ui.perfetto.dev)
///   QCLUSTER_SLOW_MS=N            collect; any feedback round slower than
///                                 N ms dumps its full span tree to stderr

/// The identity a span records: which logical request (trace) and which
/// feedback round of it. trace_id 0 means "no context established".
struct TraceContext {
  std::uint64_t trace_id = 0;
  int round = -1;
};

/// A typed span attribute value. String values must have static storage
/// duration (string literals): records outlive the recording scope.
struct AttrValue {
  enum class Kind : std::uint8_t { kNone, kInt, kDouble, kString };
  Kind kind = Kind::kNone;
  long long i = 0;
  double d = 0.0;
  const char* s = nullptr;
};

/// One finished span. Plain data, fully written by ScopedSpan before it is
/// pushed into a ring buffer; `name` and attribute keys are static strings.
struct SpanRecord {
  static constexpr int kMaxAttrs = 6;

  const char* name;
  std::uint64_t trace_id;
  std::uint64_t span_id;
  std::uint64_t parent_id;  ///< 0 = root.
  int round;
  int thread_index;  ///< Small per-thread ordinal, stable for the process.
  std::int64_t begin_ns;  ///< steady_clock, comparable within the process.
  std::int64_t end_ns;
  int attr_count;
  const char* attr_keys[kMaxAttrs];
  AttrValue attr_values[kMaxAttrs];
};

/// Global collection switch. Off by default; flipped by QCLUSTER_TRACE /
/// QCLUSTER_SLOW_MS or explicitly (CLI flags, tests).
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Slow-round threshold in milliseconds; <= 0 disables the slow-query log.
double SlowRoundThresholdMs();
void SetSlowRoundThresholdMs(double ms);

/// Allocates a fresh process-unique trace id (never 0).
std::uint64_t NewTraceId();

/// The calling thread's current trace context ({0, -1} when none).
TraceContext CurrentContext();

/// RAII span: begins on construction (when tracing is enabled), records
/// itself into the thread's ring buffer on destruction. Nests via a
/// thread-local: the span active at construction becomes the parent.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) Begin(name);
  }
  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a typed attribute; silently dropped beyond
  /// SpanRecord::kMaxAttrs. Keys and string values must be static strings.
  void AddAttr(const char* key, long long value);
  void AddAttr(const char* key, double value);
  void AddAttr(const char* key, const char* value);
  template <typename T, std::enable_if_t<std::is_integral_v<T> &&
                                             !std::is_same_v<T, long long>,
                                         int> = 0>
  void AddAttr(const char* key, T value) {
    AddAttr(key, static_cast<long long>(value));
  }

  /// 0 while inactive (tracing disabled at construction).
  std::uint64_t span_id() const { return active_ ? rec_.span_id : 0; }

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  // Deliberately not value-initialized: Begin() writes every field, and
  // zeroing ~300 bytes per disabled span is the overhead the disabled path
  // must not pay. Only read when active_.
  SpanRecord rec_;
};

/// No-op stand-in the span macros expand to under
/// -DQCLUSTER_DISABLE_METRICS, so attribute call sites still compile.
class NullSpan {
 public:
  template <typename T>
  void AddAttr(const char*, T) {}
};

/// RAII trace-context scope for one feedback round. Takes ownership iff
/// tracing is enabled, `trace_id` is non-zero, and no context is already
/// active on this thread (so an engine nested inside a session inherits the
/// session's context instead of starting its own). The owner, on
/// destruction, drains the recorder and emits the round's compact summary
/// line, plus the full span tree to stderr when the round exceeded the
/// slow threshold.
class ScopedTraceContext {
 public:
  ScopedTraceContext(std::uint64_t trace_id, int round);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  bool owner_ = false;
  TraceContext installed_;
  TraceContext saved_;
  std::uint64_t saved_span_ = 0;
  std::int64_t begin_ns_ = 0;
};

/// Snapshot of the submitting thread's context + active span, captured
/// before handing work to pool threads.
struct PropagatedContext {
  bool active = false;
  TraceContext context;
  std::uint64_t parent_span = 0;
};

/// Captures the calling thread's context for propagation; inactive while
/// tracing is disabled (and then free beyond one atomic load).
PropagatedContext CaptureContext();

/// RAII scope a pool worker (or the caller, for shard 0) opens around one
/// ParallelFor shard: installs the submitter's context on this thread and
/// records a "thread_pool.shard" span parented to the submitting span.
class ScopedWorkerSpan {
 public:
  ScopedWorkerSpan(const PropagatedContext& ctx, int shard);
  ~ScopedWorkerSpan();

  ScopedWorkerSpan(const ScopedWorkerSpan&) = delete;
  ScopedWorkerSpan& operator=(const ScopedWorkerSpan&) = delete;

 private:
  bool active_ = false;
  TraceContext saved_;
  std::uint64_t saved_span_ = 0;
  std::optional<ScopedSpan> span_;
};

namespace internal {

/// Fixed-capacity per-thread span ring. Push overwrites the oldest record
/// when full (incrementing the dropped counter) and never blocks beyond an
/// uncontended mutex — the lock is only ever contended by a drain.
class ThreadBuffer {
 public:
  static constexpr int kCapacity = 4096;

  ThreadBuffer();

  void Push(const SpanRecord& rec);
  /// Appends the buffered records, oldest first, and clears the ring.
  void DrainInto(std::vector<SpanRecord>* out);
  long long dropped() const;
  void ResetDropped();
  int thread_index() const { return thread_index_; }

 private:
  const int thread_index_;
  mutable Mutex mu_;
  std::unique_ptr<SpanRecord[]> ring_ QCLUSTER_GUARDED_BY(mu_);
  int size_ QCLUSTER_GUARDED_BY(mu_) = 0;
  int next_ QCLUSTER_GUARDED_BY(mu_) = 0;  ///< Ring slot the next push uses.
  long long dropped_ QCLUSTER_GUARDED_BY(mu_) = 0;
};

/// The calling thread's buffer, created and registered on first use.
ThreadBuffer& LocalBuffer();

/// Applies QCLUSTER_TRACE / QCLUSTER_SLOW_MS from the environment and
/// registers the exit dump; idempotent. Referenced from the inline variable
/// below so the initializer survives static-library linking in every binary
/// that includes this header.
bool InitTraceFromEnv();
inline const bool kTraceEnvApplied = InitTraceFromEnv();

}  // namespace internal

/// Bounded owner of every drained span. Thread buffers register themselves
/// here and are kept alive past thread exit; Drain moves their contents
/// into the bounded retained set (oldest dropped beyond kMaxRetained).
class TraceRecorder {
 public:
  /// The process-wide recorder used by all instrumentation.
  static TraceRecorder& Global();

  /// Retention cap on drained spans (~128k spans ≈ a few thousand rounds).
  static constexpr std::size_t kMaxRetained = std::size_t{1} << 17;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Pulls every thread buffer's records into the retained set.
  void Drain();

  /// Drains, then returns a copy of the retained spans (drain order:
  /// per-thread oldest-first; use begin_ns to order globally).
  std::vector<SpanRecord> Snapshot();

  /// Drains, then returns the spans of one (trace, round); round -1
  /// matches every round of the trace.
  std::vector<SpanRecord> SpansForRound(std::uint64_t trace_id, int round);

  /// Total spans dropped so far: ring-buffer overwrites plus retained-set
  /// evictions.
  long long dropped() const;

  /// Clears retained spans and every registered thread buffer, and zeroes
  /// the dropped counters (test isolation).
  void Reset();

  /// Serializes the retained spans (after a drain) as a deterministic
  /// Chrome trace_event JSON document: {"displayTimeUnit": "ms",
  /// "traceEvents": [...]} with one complete ("ph": "X") event per span,
  /// sorted by (begin, span id). pid = trace id, tid = thread index, so
  /// chrome://tracing groups rows by trace and nests spans per thread.
  std::string ToChromeTraceJson();

  /// Writes ToChromeTraceJson() (plus a trailing newline) to `path`.
  [[nodiscard]] Status DumpChromeTrace(const std::string& path);

  /// One-line per-round summary: total wall time plus the per-phase
  /// durations of every span within two levels of the round's root, e.g.
  ///   trace=3 round=1 total=12.4ms feedback.total=12.2ms
  ///   feedback.knn_query=10.1ms ... spans=42
  std::string RoundSummary(std::uint64_t trace_id, int round);

  /// Indented rendering of a span forest (children under parents, siblings
  /// by begin time), one span per line with duration and attributes.
  static std::string FormatSpanTree(const std::vector<SpanRecord>& spans);

 private:
  friend internal::ThreadBuffer& internal::LocalBuffer();
  void RegisterBuffer(std::shared_ptr<internal::ThreadBuffer> buffer);

  mutable Mutex mu_;
  std::vector<std::shared_ptr<internal::ThreadBuffer>> buffers_
      QCLUSTER_GUARDED_BY(mu_);
  std::deque<SpanRecord> retained_ QCLUSTER_GUARDED_BY(mu_);
  long long retained_dropped_ QCLUSTER_GUARDED_BY(mu_) = 0;
};

}  // namespace qcluster::trace

/// Declares an RAII span `var` covering the rest of the enclosing scope.
/// `var` is a real object so call sites can attach attributes:
///   QCLUSTER_TRACE_SPAN(span, "index.linear_scan.search");
///   span.AddAttr("k", k);
/// Under -DQCLUSTER_DISABLE_METRICS both macros compile to no-ops.
#ifdef QCLUSTER_DISABLE_METRICS
#define QCLUSTER_TRACE_SPAN(var, name) \
  [[maybe_unused]] ::qcluster::trace::NullSpan var
#define QCLUSTER_TRACE_ROUND(var, trace_id, round) \
  [[maybe_unused]] ::qcluster::trace::NullSpan var
#else
#define QCLUSTER_TRACE_SPAN(var, name) ::qcluster::trace::ScopedSpan var(name)
/// Establishes the (trace id, round id) context for the rest of the scope;
/// the outermost such scope of a round emits the summary / slow-query log.
#define QCLUSTER_TRACE_ROUND(var, trace_id, round) \
  ::qcluster::trace::ScopedTraceContext var(trace_id, round)
#endif

#endif  // QCLUSTER_COMMON_TRACE_H_
